package pointsto

import (
	"snorlax/internal/ir"
)

// Steensgaard is the unification-based points-to analysis the paper
// contrasts with inclusion-based analysis (§4.2): near-linear time,
// but coarser, because assignment unifies rather than includes.
//
// It is field-insensitive (each allocation is one blob), which is the
// classical formulation and makes the precision gap measurable in the
// ablation benchmarks.
type Steensgaard struct {
	mod   *ir.Module
	scope Scope
	objs  *objTable

	parent  []int32 // union-find forest over cells
	pointee []int32 // each class's pointee cell (-1 = none yet)

	// cells
	regCell  map[*ir.Reg]int32
	objCell  map[ObjID]int32 // cell of the object's storage
	retCell  map[*ir.Func]int32
	objOf    map[int32][]ObjID // representative object list per object cell
	allFuncs []*ir.Func
}

// NewSteensgaard builds and solves the unification system.
func NewSteensgaard(mod *ir.Module, scope Scope) *Steensgaard {
	s := &Steensgaard{
		mod:     mod,
		scope:   scope,
		objs:    newObjTable(),
		regCell: make(map[*ir.Reg]int32),
		objCell: make(map[ObjID]int32),
		retCell: make(map[*ir.Func]int32),
		objOf:   make(map[int32][]ObjID),
	}
	s.run()
	return s
}

func (s *Steensgaard) newCell() int32 {
	id := int32(len(s.parent))
	s.parent = append(s.parent, id)
	s.pointee = append(s.pointee, -1)
	return id
}

func (s *Steensgaard) find(c int32) int32 {
	for s.parent[c] != c {
		s.parent[c] = s.parent[s.parent[c]]
		c = s.parent[c]
	}
	return c
}

// union merges two cells and recursively unifies their pointees.
func (s *Steensgaard) union(a, b int32) int32 {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return ra
	}
	s.parent[rb] = ra
	// Merge attached objects.
	if objs := s.objOf[rb]; len(objs) > 0 {
		s.objOf[ra] = append(s.objOf[ra], objs...)
		delete(s.objOf, rb)
	}
	pa, pb := s.pointee[ra], s.pointee[rb]
	switch {
	case pa < 0:
		s.pointee[ra] = pb
	case pb >= 0:
		s.pointee[ra] = s.union(pa, pb)
	}
	return s.find(ra)
}

// pointeeOf returns (creating if needed) the pointee cell of c.
func (s *Steensgaard) pointeeOf(c int32) int32 {
	r := s.find(c)
	if s.pointee[r] < 0 {
		s.pointee[r] = s.newCell()
	}
	return s.find(s.pointee[r])
}

func (s *Steensgaard) cellOfReg(r *ir.Reg) int32 {
	if c, ok := s.regCell[r]; ok {
		return s.find(c)
	}
	c := s.newCell()
	s.regCell[r] = c
	return c
}

// cellOfObj returns the cell of an object's storage, registering the
// object with its class (field-insensitive: always the base object).
func (s *Steensgaard) cellOfObj(o ObjID) int32 {
	o = s.objs.objs[o].Base
	if c, ok := s.objCell[o]; ok {
		return s.find(c)
	}
	c := s.newCell()
	s.objCell[o] = c
	s.objOf[c] = append(s.objOf[c], o)
	return c
}

func (s *Steensgaard) cellOfRet(f *ir.Func) int32 {
	if c, ok := s.retCell[f]; ok {
		return s.find(c)
	}
	c := s.newCell()
	s.retCell[f] = c
	return c
}

// valueCell returns the cell describing value v, creating address-of
// structure for globals and functions.
func (s *Steensgaard) valueCell(v ir.Value) (int32, bool) {
	switch x := v.(type) {
	case *ir.Reg:
		return s.cellOfReg(x), true
	case *ir.GlobalRef:
		// A synthetic cell whose pointee is the global's storage.
		c := s.newCell()
		obj := s.objs.globalObjs(x.Global)
		s.pointee[s.find(c)] = s.cellOfObj(obj)
		return c, true
	case *ir.FuncRef:
		c := s.newCell()
		s.pointee[s.find(c)] = s.cellOfObj(s.objs.funcObjOf(x.Func))
		s.allFuncs = append(s.allFuncs, x.Func)
		return c, true
	}
	return 0, false
}

// assign implements v := w by unifying cells.
func (s *Steensgaard) assign(dst int32, src ir.Value) {
	c, ok := s.valueCell(src)
	if !ok {
		return
	}
	s.union(dst, c)
}

func (s *Steensgaard) run() {
	s.mod.Instrs(func(in ir.Instr) {
		if !s.scope.In(in) {
			return
		}
		switch i := in.(type) {
		case *ir.AllocaInstr:
			obj := s.objs.allocObjs(in, i.Elem)
			s.union(s.pointeeOf(s.cellOfReg(i.Dst)), s.cellOfObj(obj))
		case *ir.NewInstr:
			obj := s.objs.allocObjs(in, i.Elem)
			s.union(s.pointeeOf(s.cellOfReg(i.Dst)), s.cellOfObj(obj))
		case *ir.LoadInstr:
			// x = *p: x stores what the location p points to stores.
			if p, ok := s.valueCell(i.Addr); ok {
				mem := s.pointeeOf(p)
				s.union(s.pointeeOf(s.cellOfReg(i.Dst)), s.pointeeOf(mem))
			}
		case *ir.StoreInstr:
			p, ok := s.valueCell(i.Addr)
			if !ok {
				return
			}
			mem := s.pointeeOf(p)
			if vc, ok := s.valueCell(i.Val); ok {
				s.union(s.pointeeOf(mem), s.pointeeOf(vc))
			}
		case *ir.FieldAddrInstr:
			// Field-insensitive: the field aliases the whole object.
			if p, ok := s.valueCell(i.Base); ok {
				s.union(s.pointeeOf(s.cellOfReg(i.Dst)), s.pointeeOf(p))
			}
		case *ir.IndexAddrInstr:
			if p, ok := s.valueCell(i.Base); ok {
				s.union(s.pointeeOf(s.cellOfReg(i.Dst)), s.pointeeOf(p))
			}
		case *ir.CastInstr:
			s.assign(s.cellOfReg(i.Dst), i.Val)
		case *ir.CallInstr:
			s.genCall(i.Callee, i.Args, i.Dst)
		case *ir.SpawnInstr:
			s.genCall(i.Callee, i.Args, nil)
		case *ir.RetInstr:
			if i.Val != nil {
				f := in.Block().Parent
				s.assign(s.cellOfRet(f), i.Val)
			}
		}
	})
}

func (s *Steensgaard) genCall(callee ir.Value, args []ir.Value, dst *ir.Reg) {
	var targets []*ir.Func
	if fr, ok := callee.(*ir.FuncRef); ok {
		targets = []*ir.Func{fr.Func}
	} else {
		// Indirect call: conservatively unify with every
		// address-taken function of matching arity.
		for _, f := range s.allFuncs {
			if len(f.Params) == len(args) {
				targets = append(targets, f)
			}
		}
	}
	for _, f := range targets {
		for i, arg := range args {
			if i < len(f.Params) {
				s.assign(s.cellOfReg(f.Params[i]), arg)
			}
		}
		if dst != nil {
			s.union(s.cellOfReg(dst), s.cellOfRet(f))
		}
	}
}

// PointsTo returns the objects in the pointee class of operand v.
func (s *Steensgaard) PointsTo(v ir.Value) ObjSet {
	c, ok := s.valueCell(v)
	if !ok {
		return nil
	}
	r := s.find(c)
	if s.pointee[r] < 0 {
		return nil
	}
	mem := s.find(s.pointee[r])
	out := make(ObjSet)
	for _, o := range s.objOf[mem] {
		out.Add(o)
	}
	return out
}

// MayAlias reports whether two operands may point at the same class.
func (s *Steensgaard) MayAlias(p, q ir.Value) bool {
	cp, ok1 := s.valueCell(p)
	cq, ok2 := s.valueCell(q)
	if !ok1 || !ok2 {
		return false
	}
	rp, rq := s.find(cp), s.find(cq)
	if s.pointee[rp] < 0 || s.pointee[rq] < 0 {
		return false
	}
	return s.find(s.pointee[rp]) == s.find(s.pointee[rq])
}

// Objects returns the interned object table.
func (s *Steensgaard) Objects() []Object { return s.objs.objs }
