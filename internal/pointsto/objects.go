// Package pointsto implements the interprocedural pointer analyses of
// Lazy Diagnosis (§4.2 of the Snorlax paper).
//
// The primary analysis is Andersen-style inclusion-based points-to
// analysis — the constraint rules of the paper's Figure 3 — extended
// with field sensitivity and with the paper's key twist: scope
// restriction, which limits constraint generation to the instructions
// that actually executed according to the control-flow trace. A
// Steensgaard-style unification-based analysis is included as the
// faster-but-coarser baseline the paper contrasts against.
package pointsto

import (
	"fmt"
	"sort"

	"snorlax/internal/ir"
)

// ObjID identifies one abstract memory object: an allocation site (or
// global, or function) at a specific word offset. Field sensitivity
// comes from giving each word of a struct its own object.
type ObjID int32

// NoObj is the zero object; valid ids start at 0.
const NoObj ObjID = -1

// ObjKind classifies abstract objects.
type ObjKind int

// The abstract object kinds.
const (
	// ObjAlloc is frame or heap storage created by alloca/new.
	ObjAlloc ObjKind = iota
	// ObjGlobal is a module global's storage.
	ObjGlobal
	// ObjFunc is a function treated as a value (for indirect calls).
	ObjFunc
)

// Object describes one abstract memory object.
type Object struct {
	Kind ObjKind
	// Site is the allocating instruction for ObjAlloc.
	Site ir.Instr
	// Global is set for ObjGlobal.
	Global *ir.Global
	// Func is set for ObjFunc.
	Func *ir.Func
	// Offset is the word offset within the allocation.
	Offset int64
	// Words is the total word size of the allocation this object
	// belongs to (used to bounds-check field offsets).
	Words int64
	// Base is the ObjID of offset 0 of the same allocation.
	Base ObjID
}

func (o Object) String() string {
	switch o.Kind {
	case ObjGlobal:
		if o.Offset == 0 {
			return "@" + o.Global.Name
		}
		return fmt.Sprintf("@%s+%d", o.Global.Name, o.Offset)
	case ObjFunc:
		return "func:" + o.Func.Name
	default:
		return fmt.Sprintf("alloc@pc%d+%d", o.Site.PC(), o.Offset)
	}
}

// ObjSet is a set of abstract objects.
type ObjSet map[ObjID]struct{}

// NewObjSet returns a set holding ids.
func NewObjSet(ids ...ObjID) ObjSet {
	s := make(ObjSet, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Add inserts id, reporting whether it was new.
func (s ObjSet) Add(id ObjID) bool {
	if _, ok := s[id]; ok {
		return false
	}
	s[id] = struct{}{}
	return true
}

// Has reports membership.
func (s ObjSet) Has(id ObjID) bool {
	_, ok := s[id]
	return ok
}

// Union adds all of other, returning the ids that were new.
func (s ObjSet) Union(other ObjSet) []ObjID {
	var added []ObjID
	for id := range other {
		if s.Add(id) {
			added = append(added, id)
		}
	}
	return added
}

// Intersects reports whether the sets share an element.
func (s ObjSet) Intersects(other ObjSet) bool {
	a, b := s, other
	if len(b) < len(a) {
		a, b = b, a
	}
	for id := range a {
		if b.Has(id) {
			return true
		}
	}
	return false
}

// Sorted returns the ids in ascending order.
func (s ObjSet) Sorted() []ObjID {
	ids := make([]ObjID, 0, len(s))
	for id := range s {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// objTable interns abstract objects.
type objTable struct {
	objs []Object
	// allocBase maps an allocation site to the ObjID of its word 0.
	allocBase map[ir.Instr]ObjID
	// globalBase maps a global to the ObjID of its word 0.
	globalBase map[*ir.Global]ObjID
	funcObj    map[*ir.Func]ObjID
}

func newObjTable() *objTable {
	return &objTable{
		allocBase:  make(map[ir.Instr]ObjID),
		globalBase: make(map[*ir.Global]ObjID),
		funcObj:    make(map[*ir.Func]ObjID),
	}
}

func wordsOf(t ir.Type) int64 {
	w := t.Size() / 8
	if w <= 0 {
		w = 1
	}
	return w
}

// allocObjs creates (or returns) the per-word objects of an
// allocation site and returns the base object id.
func (tb *objTable) allocObjs(site ir.Instr, elem ir.Type) ObjID {
	if id, ok := tb.allocBase[site]; ok {
		return id
	}
	words := wordsOf(elem)
	base := ObjID(len(tb.objs))
	for off := int64(0); off < words; off++ {
		tb.objs = append(tb.objs, Object{
			Kind: ObjAlloc, Site: site, Offset: off, Words: words, Base: base,
		})
	}
	tb.allocBase[site] = base
	return base
}

// globalObjs creates (or returns) the per-word objects of a global.
func (tb *objTable) globalObjs(g *ir.Global) ObjID {
	if id, ok := tb.globalBase[g]; ok {
		return id
	}
	words := wordsOf(g.Typ)
	base := ObjID(len(tb.objs))
	for off := int64(0); off < words; off++ {
		tb.objs = append(tb.objs, Object{
			Kind: ObjGlobal, Global: g, Offset: off, Words: words, Base: base,
		})
	}
	tb.globalBase[g] = base
	return base
}

func (tb *objTable) funcObjOf(f *ir.Func) ObjID {
	if id, ok := tb.funcObj[f]; ok {
		return id
	}
	id := ObjID(len(tb.objs))
	tb.objs = append(tb.objs, Object{Kind: ObjFunc, Func: f, Words: 1, Base: id})
	tb.funcObj[f] = id
	return id
}

// shift returns the object delta words past id, or NoObj when the
// offset leaves the allocation.
func (tb *objTable) shift(id ObjID, delta int64) ObjID {
	o := tb.objs[id]
	if o.Kind == ObjFunc {
		return NoObj
	}
	no := o.Offset + delta
	if no < 0 || no >= o.Words {
		return NoObj
	}
	return o.Base + ObjID(no)
}
