package pointsto

import (
	"snorlax/internal/ir"
)

// Scope selects which instructions generate constraints. A nil Scope
// means whole-program analysis; otherwise only instructions whose PC
// is in the set are analyzed — the paper's scope restriction (§4.2),
// which is what makes the hybrid analysis fast.
type Scope map[ir.PC]bool

// In reports whether the instruction is inside the scope.
func (s Scope) In(in ir.Instr) bool { return s == nil || s[in.PC()] }

type nodeID int32

// node is one constraint-graph vertex: a register, a memory object's
// storage, or a function's return value.
type node struct {
	pts ObjSet
	// copies are inclusion edges: pts(succ) ⊇ pts(this). Rule (2) of
	// the paper's Figure 3.
	copies []nodeID
	// loads are deferred rule-(4) constraints: for each object o in
	// pts(this), pts(dst) ⊇ pts(mem(o)).
	loads []nodeID
	// stores are deferred rule-(3) constraints: for each object o in
	// pts(this), pts(mem(o)) ⊇ pts(src).
	stores []nodeID
	// geps are deferred field-address constraints: for each o in
	// pts(this), pts(dst) ⊇ {o+delta}.
	geps []gepEdge
	// icalls are indirect call sites whose callee is this node.
	icalls []*icallSite
}

type gepEdge struct {
	dst   nodeID
	delta int64
}

type icallSite struct {
	args []ir.Value
	dst  *ir.Reg
	// wired records functions already connected at this site.
	wired map[*ir.Func]bool
}

// Andersen is the inclusion-based points-to analysis.
type Andersen struct {
	mod   *ir.Module
	scope Scope
	objs  *objTable
	nodes []*node
	// regNode maps registers to their node.
	regNode map[*ir.Reg]nodeID
	// memNode maps objects to the node modeling their storage.
	memNode map[ObjID]nodeID
	// retNode maps functions to the node holding their return value.
	retNode map[*ir.Func]nodeID

	work []nodeID
	// inWork dedupes worklist entries.
	inWork map[nodeID]bool
	// copySeen dedupes dynamically-added copy edges.
	copySeen map[copyKey]bool

	// Stats
	constraints int
	iterations  int
}

// NewAndersen builds and solves the constraint system for mod,
// restricted to scope (nil for whole-program).
func NewAndersen(mod *ir.Module, scope Scope) *Andersen {
	a := &Andersen{
		mod:     mod,
		scope:   scope,
		objs:    newObjTable(),
		regNode: make(map[*ir.Reg]nodeID),
		memNode: make(map[ObjID]nodeID),
		retNode: make(map[*ir.Func]nodeID),
		inWork:  make(map[nodeID]bool),
	}
	a.generate()
	a.solve()
	return a
}

func (a *Andersen) newNode() nodeID {
	a.nodes = append(a.nodes, &node{pts: make(ObjSet)})
	return nodeID(len(a.nodes) - 1)
}

func (a *Andersen) nodeOfReg(r *ir.Reg) nodeID {
	if id, ok := a.regNode[r]; ok {
		return id
	}
	id := a.newNode()
	a.regNode[r] = id
	return id
}

func (a *Andersen) nodeOfMem(o ObjID) nodeID {
	if id, ok := a.memNode[o]; ok {
		return id
	}
	id := a.newNode()
	a.memNode[o] = id
	return id
}

func (a *Andersen) nodeOfRet(f *ir.Func) nodeID {
	if id, ok := a.retNode[f]; ok {
		return id
	}
	id := a.newNode()
	a.retNode[f] = id
	return id
}

func (a *Andersen) enqueue(n nodeID) {
	if !a.inWork[n] {
		a.inWork[n] = true
		a.work = append(a.work, n)
	}
}

// addObj seeds an address-of fact: pts(n) ⊇ {o}. Rule (1).
func (a *Andersen) addObj(n nodeID, o ObjID) {
	if a.nodes[n].pts.Add(o) {
		a.enqueue(n)
	}
}

// addCopy wires pts(dst) ⊇ pts(src). Rule (2).
func (a *Andersen) addCopy(dst, src nodeID) {
	if dst == src {
		return
	}
	a.nodes[src].copies = append(a.nodes[src].copies, dst)
	a.constraints++
	if len(a.nodes[src].pts) > 0 {
		a.enqueue(src)
	}
}

// flowValue makes the abstract value of v flow into dst: registers
// add copy edges, address-carrying operands (globals, functions) add
// their object directly, constants contribute nothing.
func (a *Andersen) flowValue(dst nodeID, v ir.Value) {
	switch x := v.(type) {
	case *ir.Reg:
		a.addCopy(dst, a.nodeOfReg(x))
	case *ir.GlobalRef:
		a.addObj(dst, a.objs.globalObjs(x.Global))
	case *ir.FuncRef:
		a.addObj(dst, a.objs.funcObjOf(x.Func))
	case *ir.Const:
		// Null and integers point nowhere.
	}
}

// ptrNode returns the node whose pts set enumerates the targets of
// pointer operand v, materializing a synthetic node for operands
// whose targets are statically known (globals).
func (a *Andersen) ptrNode(v ir.Value) nodeID {
	switch x := v.(type) {
	case *ir.Reg:
		return a.nodeOfReg(x)
	case *ir.GlobalRef:
		n := a.newNode()
		a.addObj(n, a.objs.globalObjs(x.Global))
		return n
	default:
		// Null pointers and function refs dereference nowhere.
		return a.newNode()
	}
}

// generate walks the in-scope instructions and builds the constraint
// graph.
func (a *Andersen) generate() {
	a.mod.Instrs(func(in ir.Instr) {
		if !a.scope.In(in) {
			return
		}
		a.constraints++
		switch i := in.(type) {
		case *ir.AllocaInstr:
			a.addObj(a.nodeOfReg(i.Dst), a.objs.allocObjs(in, i.Elem))
		case *ir.NewInstr:
			a.addObj(a.nodeOfReg(i.Dst), a.objs.allocObjs(in, i.Elem))
		case *ir.LoadInstr:
			p := a.ptrNode(i.Addr)
			a.nodes[p].loads = append(a.nodes[p].loads, a.nodeOfReg(i.Dst))
			a.enqueue(p)
		case *ir.StoreInstr:
			p := a.ptrNode(i.Addr)
			src := a.newNode()
			a.flowValue(src, i.Val)
			a.nodes[p].stores = append(a.nodes[p].stores, src)
			a.enqueue(p)
		case *ir.FieldAddrInstr:
			st := i.StructType()
			delta := st.FieldOffset(i.Field)
			p := a.ptrNode(i.Base)
			a.nodes[p].geps = append(a.nodes[p].geps, gepEdge{dst: a.nodeOfReg(i.Dst), delta: delta})
			a.enqueue(p)
		case *ir.IndexAddrInstr:
			// Arrays are smashed: every element aliases the base.
			p := a.ptrNode(i.Base)
			a.nodes[p].geps = append(a.nodes[p].geps, gepEdge{dst: a.nodeOfReg(i.Dst), delta: 0})
			a.enqueue(p)
		case *ir.CastInstr:
			a.flowValue(a.nodeOfReg(i.Dst), i.Val)
		case *ir.CallInstr:
			a.genCall(i.Callee, i.Args, i.Dst)
		case *ir.SpawnInstr:
			a.genCall(i.Callee, i.Args, nil)
		case *ir.RetInstr:
			if i.Val != nil {
				f := in.Block().Parent
				a.flowValue(a.nodeOfRet(f), i.Val)
			}
		}
	})
}

func (a *Andersen) genCall(callee ir.Value, args []ir.Value, dst *ir.Reg) {
	if fr, ok := callee.(*ir.FuncRef); ok {
		a.wireCall(fr.Func, args, dst)
		return
	}
	// Indirect call: defer until the callee node's points-to set
	// grows function objects.
	if r, ok := callee.(*ir.Reg); ok {
		n := a.nodeOfReg(r)
		a.nodes[n].icalls = append(a.nodes[n].icalls,
			&icallSite{args: args, dst: dst, wired: make(map[*ir.Func]bool)})
		a.enqueue(n)
	}
}

func (a *Andersen) wireCall(f *ir.Func, args []ir.Value, dst *ir.Reg) {
	for i, arg := range args {
		if i < len(f.Params) {
			a.flowValue(a.nodeOfReg(f.Params[i]), arg)
		}
	}
	if dst != nil {
		a.addCopy(a.nodeOfReg(dst), a.nodeOfRet(f))
	}
}

// solve runs the worklist to a fixed point.
func (a *Andersen) solve() {
	for len(a.work) > 0 {
		n := a.work[len(a.work)-1]
		a.work = a.work[:len(a.work)-1]
		a.inWork[n] = false
		a.iterations++
		nd := a.nodes[n]
		pts := nd.pts

		for _, succ := range nd.copies {
			if added := a.nodes[succ].pts.Union(pts); len(added) > 0 {
				a.enqueue(succ)
			}
		}
		// Deferred constraints: connect memory nodes for every object
		// currently in pts. addCopy self-dedupes only by growth, so
		// dedupe via the per-edge wired sets below.
		for o := range pts {
			for _, dst := range nd.loads {
				a.addCopyOnce(dst, a.nodeOfMem(o))
			}
			for _, src := range nd.stores {
				a.addCopyOnce(a.nodeOfMem(o), src)
			}
			for _, g := range nd.geps {
				if shifted := a.objs.shift(o, g.delta); shifted != NoObj {
					a.addObj(g.dst, shifted)
				}
			}
			for _, site := range nd.icalls {
				if fo := a.objs.objs[o]; fo.Kind == ObjFunc && !site.wired[fo.Func] {
					site.wired[fo.Func] = true
					a.wireCall(fo.Func, site.args, site.dst)
				}
			}
		}
	}
}

// copyKey identifies a copy edge for deduplication.
type copyKey struct{ dst, src nodeID }

func (a *Andersen) addCopyOnce(dst, src nodeID) {
	if a.copySeen == nil {
		a.copySeen = make(map[copyKey]bool)
	}
	k := copyKey{dst, src}
	if a.copySeen[k] {
		return
	}
	a.copySeen[k] = true
	a.addCopy(dst, src)
}

// Objects returns the interned object table.
func (a *Andersen) Objects() []Object { return a.objs.objs }

// PointsTo returns the points-to set of a pointer-valued operand. The
// returned set is shared; callers must not mutate it.
func (a *Andersen) PointsTo(v ir.Value) ObjSet {
	switch x := v.(type) {
	case *ir.Reg:
		if n, ok := a.regNode[x]; ok {
			return a.nodes[n].pts
		}
		return nil
	case *ir.GlobalRef:
		return NewObjSet(a.objs.globalObjs(x.Global))
	case *ir.FuncRef:
		return NewObjSet(a.objs.funcObjOf(x.Func))
	}
	return nil
}

// MayAlias reports whether two pointer operands may reference the
// same abstract object.
func (a *Andersen) MayAlias(p, q ir.Value) bool {
	sp, sq := a.PointsTo(p), a.PointsTo(q)
	if len(sp) == 0 || len(sq) == 0 {
		return false
	}
	return sp.Intersects(sq)
}

// Constraints returns the number of constraints generated; the Table 4
// experiment compares this between hybrid and whole-program runs.
func (a *Andersen) Constraints() int { return a.constraints }

// Iterations returns the number of worklist pops during solving.
func (a *Andersen) Iterations() int { return a.iterations }
