package pointsto

import (
	"sort"

	"snorlax/internal/ir"
)

// SortedPCs returns the scope's member PCs in ascending order — the
// canonical form used for scope equality and fingerprinting. A nil
// (whole-program) scope returns nil.
func (s Scope) SortedPCs() []ir.PC {
	if s == nil {
		return nil
	}
	pcs := make([]ir.PC, 0, len(s))
	for pc, in := range s {
		if in {
			pcs = append(pcs, pc)
		}
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	return pcs
}

// Hash returns a deterministic FNV-1a fingerprint of the scope's PC
// set. Equal scopes always hash equal; callers using the hash as a
// cache key must still compare SortedPCs on hit, since distinct
// scopes can collide. A nil (whole-program) scope hashes to 0, which
// no non-nil scope produces.
func (s Scope) Hash() uint64 {
	if s == nil {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	pcs := s.SortedPCs()
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(len(pcs)))
	for _, pc := range pcs {
		mix(uint64(pc))
	}
	if h == 0 {
		h = 1 // keep 0 reserved for the whole-program scope
	}
	return h
}

// EqualPCs reports whether two canonical PC lists (as returned by
// SortedPCs) denote the same scope.
func EqualPCs(a, b []ir.PC) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
