// Package kendall implements the normalized Kendall tau distance and
// the ordering-accuracy metric A_O used to evaluate diagnosis quality
// (§6.1 of the Snorlax paper, after Kendall 1938).
//
// Given the tool's ordered list of target instructions and the
// manually-verified ground-truth order, A_O = 100 × (1 − K/npairs),
// where K counts pairwise disagreements between the two lists.
package kendall

// Distance returns the Kendall tau distance between two orderings of
// (not necessarily identical) element sets: the number of unordered
// pairs {x, y} that appear in both lists but in opposite relative
// order, plus pairs that appear in only one list (maximal
// disagreement for missing elements).
func Distance[T comparable](a, b []T) int {
	posA := indexOf(a)
	posB := indexOf(b)
	// Collect the union of elements, preserving a's order then b's
	// extras, for deterministic iteration.
	var union []T
	seen := make(map[T]bool)
	for _, x := range a {
		if !seen[x] {
			seen[x] = true
			union = append(union, x)
		}
	}
	for _, x := range b {
		if !seen[x] {
			seen[x] = true
			union = append(union, x)
		}
	}
	d := 0
	for i := 0; i < len(union); i++ {
		for j := i + 1; j < len(union); j++ {
			x, y := union[i], union[j]
			ax, okAX := posA[x]
			ay, okAY := posA[y]
			bx, okBX := posB[x]
			by, okBY := posB[y]
			inA := okAX && okAY
			inB := okBX && okBY
			switch {
			case inA && inB:
				if (ax < ay) != (bx < by) {
					d++
				}
			case inA != inB:
				// The pair is ranked by only one list: count it as a
				// disagreement so missing elements hurt accuracy.
				d++
			}
		}
	}
	return d
}

func indexOf[T comparable](s []T) map[T]int {
	m := make(map[T]int, len(s))
	for i, x := range s {
		if _, ok := m[x]; !ok {
			m[x] = i
		}
	}
	return m
}

// Pairs returns the number of unordered pairs over the union of the
// two lists' elements.
func Pairs[T comparable](a, b []T) int {
	seen := make(map[T]bool)
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		seen[x] = true
	}
	n := len(seen)
	return n * (n - 1) / 2
}

// OrderingAccuracy returns A_O in percent: 100 × (1 − K/npairs).
// Two empty lists are in perfect agreement.
func OrderingAccuracy[T comparable](tool, truth []T) float64 {
	n := Pairs(tool, truth)
	if n == 0 {
		return 100
	}
	return 100 * (1 - float64(Distance(tool, truth))/float64(n))
}
