package kendall

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistanceIdentical(t *testing.T) {
	if d := Distance([]int{1, 2, 3}, []int{1, 2, 3}); d != 0 {
		t.Errorf("identical lists distance = %d", d)
	}
}

func TestDistancePaperExample(t *testing.T) {
	// From §6.1: [I1, I2, I3] vs [I1, I3, I2] has distance 1.
	a := []string{"I1", "I2", "I3"}
	b := []string{"I1", "I3", "I2"}
	if d := Distance(a, b); d != 1 {
		t.Errorf("distance = %d, want 1", d)
	}
	// A_O = 100*(1 - 1/3) = 66.67.
	acc := OrderingAccuracy(a, b)
	if acc < 66.6 || acc > 66.7 {
		t.Errorf("A_O = %f, want 66.67", acc)
	}
}

func TestDistanceReversed(t *testing.T) {
	a := []int{1, 2, 3, 4}
	b := []int{4, 3, 2, 1}
	if d := Distance(a, b); d != 6 {
		t.Errorf("reversed distance = %d, want 6 (all pairs)", d)
	}
	if acc := OrderingAccuracy(a, b); acc != 0 {
		t.Errorf("A_O = %f, want 0", acc)
	}
}

func TestMissingElementsCount(t *testing.T) {
	a := []int{1, 2}
	b := []int{1, 2, 3}
	// Pairs over union {1,2,3} = 3; pair (1,2) agrees; pairs (1,3),
	// (2,3) exist only in b → 2 disagreements.
	if d := Distance(a, b); d != 2 {
		t.Errorf("distance = %d, want 2", d)
	}
}

func TestOrderingAccuracyEmpty(t *testing.T) {
	if acc := OrderingAccuracy[int](nil, nil); acc != 100 {
		t.Errorf("empty lists A_O = %f", acc)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	check := func(seedA, seedB uint8) bool {
		rngA := rand.New(rand.NewSource(int64(seedA)))
		n := int(seedA%6) + 2
		a := rngA.Perm(n)
		b := rand.New(rand.NewSource(int64(seedB))).Perm(n)
		return Distance(a, b) == Distance(b, a)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestAccuracyBounds(t *testing.T) {
	check := func(seedA, seedB uint8) bool {
		n := int(seedA%7) + 1
		a := rand.New(rand.NewSource(int64(seedA))).Perm(n)
		b := rand.New(rand.NewSource(int64(seedB))).Perm(n)
		acc := OrderingAccuracy(a, b)
		return acc >= 0 && acc <= 100
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleZeroSelf(t *testing.T) {
	check := func(seed uint8) bool {
		n := int(seed%8) + 1
		a := rand.New(rand.NewSource(int64(seed))).Perm(n)
		return Distance(a, a) == 0 && OrderingAccuracy(a, a) == 100
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestDuplicatesUseFirstPosition(t *testing.T) {
	a := []int{1, 2, 1}
	b := []int{1, 2}
	if d := Distance(a, b); d != 0 {
		t.Errorf("distance = %d, want 0 (dup collapses to first index)", d)
	}
}

// TestDistanceEdgeCases pins the degenerate inputs down in one table:
// empty lists, single elements, duplicate ("tied") elements, and
// disjoint element sets. Distance ranks only pairs at least one list
// orders, so a pair present in neither list agrees by definition.
func TestDistanceEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		a, b  []int
		dist  int
		pairs int
		acc   float64
	}{
		{"both empty", nil, nil, 0, 0, 100},
		{"one empty", []int{1, 2}, nil, 1, 1, 0},
		{"single identical", []int{7}, []int{7}, 0, 0, 100},
		{"single disjoint", []int{1}, []int{2}, 0, 1, 100},
		{"all equal duplicates", []int{5, 5, 5}, []int{5, 5}, 0, 0, 100},
		{"tied prefix collapses to first position", []int{1, 1, 2}, []int{1, 2}, 0, 1, 100},
		{"single vs pair supersets", []int{1}, []int{1, 2}, 1, 1, 0},
		{"reversed pair", []int{1, 2}, []int{2, 1}, 1, 1, 0},
		{"duplicate does not double-count disagreement", []int{1, 2, 1}, []int{2, 1}, 1, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if d := Distance(tc.a, tc.b); d != tc.dist {
				t.Errorf("Distance(%v, %v) = %d, want %d", tc.a, tc.b, d, tc.dist)
			}
			if p := Pairs(tc.a, tc.b); p != tc.pairs {
				t.Errorf("Pairs(%v, %v) = %d, want %d", tc.a, tc.b, p, tc.pairs)
			}
			if acc := OrderingAccuracy(tc.a, tc.b); acc != tc.acc {
				t.Errorf("OrderingAccuracy(%v, %v) = %f, want %f", tc.a, tc.b, acc, tc.acc)
			}
		})
	}
}
