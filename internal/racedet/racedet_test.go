package racedet

import (
	"testing"

	"snorlax/internal/corpus"
	"snorlax/internal/ir"
	"snorlax/internal/vm"
)

func parse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func counter(locked bool) string {
	lock, unlock := "", ""
	if locked {
		lock, unlock = "lock @mu", "unlock @mu"
	}
	return `
module ctr
global mu: mutex
global count: int

func inc(n: int) {
entry:
  %i = alloca int
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = lt %iv, %n
  condbr %c, body, done
body:
  ` + lock + `
  %v = load @count
  %v2 = add %v, 1
  store %v2, @count
  ` + unlock + `
  %iv2 = add %iv, 1
  store %iv2, %i
  br loop
done:
  ret
}

func main() {
entry:
  %t1 = spawn inc(50)
  %t2 = spawn inc(50)
  join %t1
  join %t2
  ret
}
`
}

func TestDetectsUnprotectedCounter(t *testing.T) {
	m := parse(t, counter(false))
	races, res := Detect(m, vm.Config{Seed: 1})
	if res.Failed() {
		t.Fatal(res.Failure)
	}
	if len(races) == 0 {
		t.Fatal("no race reported on the unsynchronized counter")
	}
	// The racy PCs must be the counter load/store, not the private
	// loop index.
	pcs := map[ir.PC]bool{}
	for _, r := range races {
		pcs[r.Second] = true
	}
	var counterOps, privateOps int
	m.Instrs(func(in ir.Instr) {
		if !pcs[in.PC()] {
			return
		}
		p := ir.AccessedPointer(in)
		if g, ok := p.(*ir.GlobalRef); ok && g.Global.Name == "count" {
			counterOps++
		} else {
			privateOps++
		}
	})
	if counterOps == 0 {
		t.Error("race not attributed to @count accesses")
	}
	if privateOps != 0 {
		t.Errorf("%d races on thread-private locations (false positives)", privateOps)
	}
}

func TestNoRaceWhenLocked(t *testing.T) {
	m := parse(t, counter(true))
	races, res := Detect(m, vm.Config{Seed: 1})
	if res.Failed() {
		t.Fatal(res.Failure)
	}
	if len(races) != 0 {
		t.Fatalf("false positives on the locked counter: %v", races)
	}
}

func TestReadOnlySharingIsNotARace(t *testing.T) {
	src := `
module ro
global config: int = 7

func reader() {
entry:
  %v = load @config
  %c = eq %v, 7
  assert %c, "config changed"
  ret
}

func main() {
entry:
  %t1 = spawn reader()
  %t2 = spawn reader()
  join %t1
  join %t2
  ret
}
`
	m := parse(t, src)
	races, res := Detect(m, vm.Config{Seed: 1})
	if res.Failed() {
		t.Fatal(res.Failure)
	}
	if len(races) != 0 {
		t.Fatalf("read-only sharing reported as race: %v", races)
	}
}

func TestInitThenHandoffIsNotARace(t *testing.T) {
	// Initialization by one thread before spawning readers must not
	// trip the detector (the Exclusive state absorbs it)... as long
	// as the readers only read.
	src := `
module init
global table: int

func reader() {
entry:
  %v = load @table
  ret
}

func main() {
entry:
  store 42, @table
  %t1 = spawn reader()
  %t2 = spawn reader()
  join %t1
  join %t2
  ret
}
`
	m := parse(t, src)
	races, res := Detect(m, vm.Config{Seed: 1})
	if res.Failed() {
		t.Fatal(res.Failure)
	}
	if len(races) != 0 {
		t.Fatalf("init-then-read-only reported as race: %v", races)
	}
}

func TestDetectsCorpusBugRaces(t *testing.T) {
	// The UAF corpus bugs are caused by an unsynchronized
	// store/load pair on the shared slot: the detector must flag it,
	// and the ground-truth PCs must be among the racy instructions.
	for _, id := range []string{"pbzip2-1", "memcached-2", "aget-1"} {
		inst := corpus.ByID(id).Build(corpus.Variant{Failing: false})
		races, res := Detect(inst.Mod, vm.Config{Seed: 1})
		if res.Failed() {
			t.Fatalf("%s: success variant failed: %v", id, res.Failure)
		}
		if len(races) == 0 {
			t.Errorf("%s: no race detected", id)
			continue
		}
		racy := New()
		_ = racy
		pcs := map[ir.PC]bool{}
		for _, r := range races {
			pcs[r.First] = true
			pcs[r.Second] = true
		}
		found := 0
		for _, truthPC := range inst.TruthPCs {
			if pcs[truthPC] {
				found++
			}
		}
		if found == 0 {
			t.Errorf("%s: ground-truth accesses %v not among racy PCs %v", id, inst.TruthPCs, pcs)
		}
	}
}

func TestRacyPCsFeedReplay(t *testing.T) {
	// §3.3 closed loop: detect the racing accesses, then record just
	// their order and replay it — the racy outcome must be pinned.
	m := parse(t, counter(false))
	races, res := Detect(m, vm.Config{Seed: 3})
	if res.Failed() || len(races) == 0 {
		t.Fatal("setup: no races")
	}
	d := New()
	cfg := vm.Config{Seed: 3, QuantumMin: 50, QuantumMax: 200}
	cfg.Access = d
	vm.Run(m, cfg)
	racy := d.RacyPCs()
	if len(racy) == 0 {
		t.Fatal("no racy PCs")
	}
	for pc := range racy {
		if in := m.InstrAt(pc); !ir.IsMemAccess(in) {
			t.Errorf("racy pc %d is %s, not a memory access", pc, in)
		}
	}
}
