// Package racedet is an Eraser-style lockset data-race detector over
// the simulated machine.
//
// The paper leans on race detection twice: order and atomicity
// violations "are in many cases caused by one or more data races"
// (§3.1), and §3.3 argues that the coarse interleaving hypothesis
// lets record/replay engines "efficiently record the order of racing
// accesses" — which presumes something identifies the racing
// accesses. This detector is that something: its reports drive the
// replay engine's monitored set (replay.SharedPCs is the static
// approximation; RacyPCs is the dynamic one) and cross-check the
// corpus ground truth.
//
// The algorithm is the classic lockset refinement (Savage et al.,
// Eraser, SOSP'97): each shared location's candidate lockset starts
// as "all locks" and is intersected with the accessing thread's held
// locks on every access; an empty lockset on a shared-modified
// location is a race. Per-location state machines suppress the
// initialization and read-only false positives.
package racedet

import (
	"fmt"
	"sort"

	"snorlax/internal/ir"
	"snorlax/internal/vm"
)

// state is the per-location Eraser state machine.
type state int

const (
	stVirgin state = iota
	stExclusive
	stShared
	stSharedModified
)

// locInfo tracks one memory word.
type locInfo struct {
	st state
	// owner is the owning thread while Exclusive.
	owner int
	// lockset is the candidate lockset (nil = still "all locks").
	lockset map[int64]bool
	// lastPC and lastTid identify the previous access, for reports.
	lastPC  ir.PC
	lastTid int
	// reported suppresses duplicate reports per static access pair.
	reported map[[2]ir.PC]bool
}

// Race is one detected data race: two accesses to the same location
// with no common lock, at least one a write.
type Race struct {
	// Addr is the racy memory word.
	Addr int64
	// First and Second are the static instructions of the two
	// conflicting accesses (the earlier one first).
	First, Second ir.PC
	// SecondTid performed the access that emptied the lockset.
	SecondTid int
	// Time is the virtual time of the detection.
	Time int64
}

func (r Race) String() string {
	return fmt.Sprintf("race @%d: pc %d vs pc %d (thread %d)", r.Addr, r.First, r.Second, r.SecondTid)
}

// Detector implements vm.AccessHook.
type Detector struct {
	// held tracks each thread's current lockset.
	held map[int]map[int64]bool
	locs map[int64]*locInfo
	// Races collects the reports in detection order.
	Races []Race
}

// New returns an empty detector; attach it as vm.Config.Access.
func New() *Detector {
	return &Detector{
		held: map[int]map[int64]bool{},
		locs: map[int64]*locInfo{},
	}
}

var _ vm.AccessHook = (*Detector)(nil)

// OnLock implements vm.AccessHook.
func (d *Detector) OnLock(tid int, in ir.Instr, addr int64, acquired bool, time int64) {
	hs := d.held[tid]
	if hs == nil {
		hs = map[int64]bool{}
		d.held[tid] = hs
	}
	if acquired {
		hs[addr] = true
	} else {
		delete(hs, addr)
	}
}

// OnAccess implements vm.AccessHook: the Eraser state machine.
func (d *Detector) OnAccess(tid int, in ir.Instr, addr int64, write bool, time int64) {
	li := d.locs[addr]
	if li == nil {
		li = &locInfo{st: stVirgin}
		d.locs[addr] = li
	}
	defer func() {
		li.lastPC = in.PC()
		li.lastTid = tid
	}()

	switch li.st {
	case stVirgin:
		li.st = stExclusive
		li.owner = tid
		return
	case stExclusive:
		if tid == li.owner {
			return
		}
		// First access by a second thread: start lockset refinement.
		if write {
			li.st = stSharedModified
		} else {
			li.st = stShared
		}
		li.lockset = d.copyHeld(tid)
	case stShared:
		li.intersect(d.held[tid])
		if write {
			li.st = stSharedModified
		}
	case stSharedModified:
		li.intersect(d.held[tid])
	}
	if li.st == stSharedModified && len(li.lockset) == 0 {
		// Classic Eraser reports the first unprotected
		// shared-modified access; we additionally report each new
		// cross-thread static pair so every racing partner surfaces
		// (the replay engine and the corpus ground truth need the
		// pairs, not just the location).
		crossThread := tid != li.lastTid
		if len(li.reported) == 0 || crossThread {
			pair := [2]ir.PC{li.lastPC, in.PC()}
			if li.reported == nil {
				li.reported = map[[2]ir.PC]bool{}
			}
			if !li.reported[pair] {
				li.reported[pair] = true
				d.Races = append(d.Races, Race{
					Addr:      addr,
					First:     li.lastPC,
					Second:    in.PC(),
					SecondTid: tid,
					Time:      time,
				})
			}
		}
	}
}

func (d *Detector) copyHeld(tid int) map[int64]bool {
	out := map[int64]bool{}
	for l := range d.held[tid] {
		out[l] = true
	}
	return out
}

func (li *locInfo) intersect(held map[int64]bool) {
	for l := range li.lockset {
		if !held[l] {
			delete(li.lockset, l)
		}
	}
}

// RacyPCs returns the static instructions involved in any detected
// race — the dynamic selection of "the racing accesses" that §3.3
// says a record/replay engine should monitor.
func (d *Detector) RacyPCs() map[ir.PC]bool {
	out := map[ir.PC]bool{}
	for _, r := range d.Races {
		if r.First != ir.NoPC {
			out[r.First] = true
		}
		out[r.Second] = true
	}
	return out
}

// Detect runs the module once under the detector and returns the
// races found, sorted by address for determinism, plus the run result.
func Detect(mod *ir.Module, cfg vm.Config) ([]Race, *vm.Result) {
	d := New()
	cfg.Access = d
	res := vm.Run(mod, cfg)
	races := append([]Race(nil), d.Races...)
	sort.Slice(races, func(i, j int) bool {
		if races[i].Addr != races[j].Addr {
			return races[i].Addr < races[j].Addr
		}
		return races[i].Second < races[j].Second
	})
	return races, res
}
