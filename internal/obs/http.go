package obs

import (
	"net/http"
	"net/http/pprof"
)

// ReadyCheck reports one readiness condition: nil means ready, an
// error says what is not (its text becomes the /readyz payload).
type ReadyCheck func() error

// Handler serves the registry in Prometheus text exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// DebugMux builds the opt-in operational endpoint: GET /metrics in
// Prometheus text format, the /debug/pprof/* profiling handlers, and
// the /healthz and /readyz probes. The handlers are mounted on an
// explicit mux, so the debug surface is reachable only on the listener
// the operator opted into — nothing here serves http.DefaultServeMux.
//
// /healthz is pure liveness: it answers 200 "ok" as long as the
// process serves HTTP at all. /readyz runs the given checks in order
// and answers 200 "ok" only if every one passes; the first failure
// turns into a 503 whose body names the failing condition — the
// payload a load balancer or the shard router reads before sending
// traffic.
func DebugMux(r *Registry, ready ...ReadyCheck) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, check := range ready {
			if err := check(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				w.Write([]byte(err.Error() + "\n"))
				return
			}
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
