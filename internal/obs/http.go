package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in Prometheus text exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// DebugMux builds the opt-in operational endpoint: GET /metrics in
// Prometheus text format plus the /debug/pprof/* profiling handlers.
// The handlers are mounted on an explicit mux, so the debug surface
// is reachable only on the listener the operator opted into — nothing
// here serves http.DefaultServeMux.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
