package obs

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, mux *http.ServeMux, path string) (int, string) {
	t.Helper()
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	return rr.Code, rr.Body.String()
}

func TestHealthzAlwaysOK(t *testing.T) {
	// Liveness is unconditional: even a mux whose readiness checks all
	// fail answers /healthz 200 — the process is up, just not ready.
	mux := DebugMux(NewRegistry(), func() error { return errors.New("not yet") })
	code, body := get(t, mux, "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q, want 200 \"ok\"", code, body)
	}
}

func TestReadyzReflectsChecks(t *testing.T) {
	restoring := errors.New("durable state not yet restored")
	poisoned := errors.New("durable store poisoned: disk full")
	var checkErrs []error
	checks := []ReadyCheck{}
	for i := range [2]int{} {
		i := i
		checks = append(checks, func() error { return checkErrs[i] })
	}
	mux := DebugMux(NewRegistry(), checks...)

	// All checks pass.
	checkErrs = []error{nil, nil}
	if code, body := get(t, mux, "/readyz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("ready /readyz = %d %q, want 200 \"ok\"", code, body)
	}
	// The first failing check names the condition, 503.
	checkErrs = []error{restoring, poisoned}
	code, body := get(t, mux, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("unready /readyz = %d, want 503", code)
	}
	if !strings.Contains(body, "not yet restored") {
		t.Errorf("/readyz body %q does not name the failing condition", body)
	}
	// Readiness is re-evaluated per request: the same mux flips back.
	checkErrs = []error{nil, nil}
	if code, _ := get(t, mux, "/readyz"); code != http.StatusOK {
		t.Errorf("recovered /readyz = %d, want 200", code)
	}
}

func TestReadyzNoChecksIsReady(t *testing.T) {
	mux := DebugMux(NewRegistry())
	if code, _ := get(t, mux, "/readyz"); code != http.StatusOK {
		t.Errorf("checkless /readyz = %d, want 200", code)
	}
}
