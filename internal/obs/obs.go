// Package obs is the diagnosis pipeline's observability core: a
// small, dependency-free metrics registry of atomic counters, gauges
// and fixed-bucket latency histograms, plus per-diagnosis pipeline
// spans covering the eight Lazy Diagnosis stages.
//
// The paper's pitch is in-production diagnosis at ~1% overhead (§3,
// §5); a server making that claim has to measure itself while it
// serves traffic. Every operational number the system exposes — the
// protocol "status" reply, the Prometheus /metrics endpoint — is a
// view over one Registry, so the two can never drift apart, and the
// metrics-consistency test suite pins them together.
//
// All metric operations are lock-free atomics on the hot path;
// registration (done once at server construction) takes a mutex.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value pair qualifying a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates the metric types a Registry holds.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket latency/size distribution.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Counter is a monotonically increasing atomic count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an instantaneous value that can move in both directions —
// open connections, queue depth, configured pool width.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) reset() { g.v.Store(0) }

// DefDurationBuckets are the default histogram bounds for stage and
// request latencies, in seconds: 1µs to 10s, roughly logarithmic.
// Diagnoses on the corpus run microseconds to low milliseconds; the
// top buckets exist so a production-scale module cannot fall off the
// end unnoticed.
var DefDurationBuckets = []float64{
	1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 2.5, 10,
}

// DefByteBuckets are the default histogram bounds for payload sizes,
// in bytes: 64 B to 4 MB in powers of four. WAL records span tiny
// lifecycle markers to multi-ring trace snapshots; the top bucket sits
// under the protocol's snapshot cap so an outlier is visible as +Inf.
var DefByteBuckets = []float64{
	64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20,
}

// Histogram is a fixed-bucket distribution with atomic buckets, an
// atomic float sum, and snapshot/reset semantics. Buckets are upper
// bounds; an implicit +Inf bucket catches the tail.
//
// Observe is lock-free. Snapshot is not linearizable against
// concurrent Observe calls — bucket counts, the total and the sum are
// read independently — which is the standard trade for a lock-free
// hot path; a quiesced histogram snapshots exactly.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistSnapshot is a point-in-time copy of a histogram's state.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds; Buckets has one extra final
	// entry for +Inf. Counts are per-bucket, not cumulative.
	Bounds  []float64
	Buckets []uint64
	// Count is the total number of observations, Sum their total.
	Count uint64
	Sum   float64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]uint64, len(h.buckets)),
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// SumDuration returns the sum as a time.Duration (for latency
// histograms observed in seconds).
func (h *Histogram) SumDuration() time.Duration {
	return time.Duration(h.Sum() * float64(time.Second))
}

// Reset zeroes the histogram's buckets, count and sum.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

// Metric is one registered series: a name, optional labels, and
// exactly one of the three value types.
type Metric struct {
	Name   string
	Help   string
	Labels []Label
	Kind   Kind

	Counter   *Counter
	Gauge     *Gauge
	Histogram *Histogram
}

// id renders the unique series identity (name plus sorted labels).
func seriesID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

func sortLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Registry holds a set of named metrics. The zero value is not
// usable; construct with NewRegistry. Registration is idempotent:
// registering an existing (name, labels) series returns the existing
// handle, so independent subsystems can share a series. Registering
// the same series under a different kind panics — that is a
// programming error, not a runtime condition.
type Registry struct {
	mu      sync.Mutex
	metrics []*Metric
	index   map[string]*Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*Metric)}
}

func (r *Registry) register(name, help string, kind Kind, labels []Label, build func() *Metric) *Metric {
	labels = sortLabels(labels)
	id := seriesID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[id]; ok {
		if m.Kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", id, kind, m.Kind))
		}
		return m
	}
	m := build()
	m.Name, m.Help, m.Kind, m.Labels = name, help, kind, labels
	r.metrics = append(r.metrics, m)
	r.index[id] = m
	return m
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, KindCounter, labels, func() *Metric {
		return &Metric{Counter: &Counter{}}
	})
	return m.Counter
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(name, help, KindGauge, labels, func() *Metric {
		return &Metric{Gauge: &Gauge{}}
	})
	return m.Gauge
}

// Histogram registers (or finds) a histogram series with the given
// bucket upper bounds (nil for DefDurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefDurationBuckets
	}
	m := r.register(name, help, KindHistogram, labels, func() *Metric {
		return &Metric{Histogram: newHistogram(bounds)}
	})
	return m.Histogram
}

// Gather returns the registered metrics in registration order. The
// slice is a copy; the *Metric handles are live.
func (r *Registry) Gather() []*Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Metric, len(r.metrics))
	copy(out, r.metrics)
	return out
}

// Find returns the metric for (name, labels), or nil.
func (r *Registry) Find(name string, labels ...Label) *Metric {
	id := seriesID(name, sortLabels(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.index[id]
}

// Reset zeroes every registered metric — counters, gauges and
// histograms alike. It exists for tests and ablations; production
// counters are cumulative by design.
func (r *Registry) Reset() {
	for _, m := range r.Gather() {
		switch m.Kind {
		case KindCounter:
			m.Counter.reset()
		case KindGauge:
			m.Gauge.reset()
		case KindHistogram:
			m.Histogram.Reset()
		}
	}
}
