package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 {
		t.Errorf("Reset left c=%d g=%d", c.Value(), g.Value())
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("k", "v"))
	b := r.Counter("x_total", "ignored on re-register", L("k", "v"))
	if a != b {
		t.Error("re-registering the same series returned a new handle")
	}
	other := r.Counter("x_total", "help", L("k", "w"))
	if a == other {
		t.Error("different label value shares a handle")
	}
	if n := len(r.Gather()); n != 2 {
		t.Errorf("registry holds %d metrics, want 2", n)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("dual", "")
}

func TestHistogramBucketCorrectness(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{1, 2, 5})
	// One observation per region: [..1], (1..2], (2..5], (5..Inf).
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 3.0, 10.0} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Upper bounds are inclusive, matching Prometheus le semantics.
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d (snapshot %+v)", i, s.Buckets[i], w, s)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-18.0) > 1e-12 {
		t.Errorf("sum = %f, want 18", s.Sum)
	}
	h.Reset()
	s = h.Snapshot()
	if s.Count != 0 || s.Sum != 0 {
		t.Errorf("reset snapshot = %+v", s)
	}
	for i, b := range s.Buckets {
		if b != 0 {
			t.Errorf("reset bucket %d = %d", i, b)
		}
	}
}

func TestHistogramDurationHelpers(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "", nil)
	h.ObserveDuration(1500 * time.Millisecond)
	h.ObserveDuration(500 * time.Millisecond)
	if got := h.SumDuration(); got != 2*time.Second {
		t.Errorf("SumDuration = %v, want 2s", got)
	}
	if h.Count() != 2 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestHistogramBoundsMustIncrease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-increasing bounds did not panic")
		}
	}()
	NewRegistry().Histogram("bad", "", []float64{1, 1})
}

func TestConcurrentObservationsAddUp(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	g := r.Gauge("depth", "")
	h := r.Histogram("lat_seconds", "", []float64{0.5})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Inc()
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*per)
	}
	s := h.Snapshot()
	if s.Count != workers*per || s.Buckets[0] != workers*per {
		t.Errorf("histogram count = %d bucket0 = %d, want %d", s.Count, s.Buckets[0], workers*per)
	}
	if math.Abs(s.Sum-0.25*workers*per) > 1e-6 {
		t.Errorf("sum = %f", s.Sum)
	}
}

func TestPipelineSpanCommitKeepsStagesInLockstep(t *testing.T) {
	r := NewRegistry()
	p := NewPipeline(r)
	sp := p.Span()
	sp.Record(StageDecode, 2*time.Millisecond)
	sp.Add(StageRank, time.Millisecond)
	sp.Add(StageRank, time.Millisecond)
	sp.Record(StageTotal, 5*time.Millisecond)
	sp.Commit()
	for st := Stage(0); st < NumStages; st++ {
		if got := p.Stage(st).Count(); got != 1 {
			t.Errorf("stage %s count = %d, want 1", st, got)
		}
	}
	if got := p.Stage(StageRank).SumDuration(); got != 2*time.Millisecond {
		t.Errorf("rank sum = %v, want 2ms", got)
	}
	// An abandoned span records nothing.
	p.Span().Record(StagePattern, time.Second)
	if got := p.Stage(StagePattern).Count(); got != 1 {
		t.Errorf("abandoned span leaked: pattern count = %d", got)
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	var sp *Span
	sp.Record(StageDecode, time.Second)
	sp.Add(StageTotal, time.Second)
	sp.Commit() // must not panic
	var p *Pipeline
	if p.Span() != nil {
		t.Error("nil pipeline span should be nil")
	}
}

func TestStageNamesCoverAllStages(t *testing.T) {
	seen := map[string]bool{}
	for st := Stage(0); st < NumStages; st++ {
		name := st.String()
		if name == "unknown" || name == "" {
			t.Errorf("stage %d has no name", st)
		}
		if seen[name] {
			t.Errorf("duplicate stage name %q", name)
		}
		seen[name] = true
	}
	if Stage(-1).String() != "unknown" || NumStages.String() != "unknown" {
		t.Error("out-of-range stages should be unknown")
	}
}

func TestFindLabelOrderInsensitive(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("multi_total", "", L("a", "1"), L("b", "2"))
	m := r.Find("multi_total", L("b", "2"), L("a", "1"))
	if m == nil || m.Counter != c {
		t.Error("Find with reordered labels missed the series")
	}
	if r.Find("multi_total") != nil {
		t.Error("Find without labels matched a labeled series")
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("snorlax_things_total", "Things counted.", L("kind", "odd\"one\\x"))
	c.Add(3)
	g := r.Gauge("snorlax_depth", "Queue depth.\nSecond line.")
	g.Set(-2)
	h := r.Histogram("snorlax_lat_seconds", "Latency.", []float64{0.001, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(7)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP snorlax_things_total Things counted.\n",
		"# TYPE snorlax_things_total counter\n",
		`snorlax_things_total{kind="odd\"one\\x"} 3` + "\n",
		"# HELP snorlax_depth Queue depth.\\nSecond line.\n",
		"# TYPE snorlax_depth gauge\n",
		"snorlax_depth -2\n",
		"# TYPE snorlax_lat_seconds histogram\n",
		`snorlax_lat_seconds_bucket{le="0.001"} 1` + "\n",
		`snorlax_lat_seconds_bucket{le="0.1"} 2` + "\n",
		`snorlax_lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"snorlax_lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionHistogramFamilyTypedOnce(t *testing.T) {
	r := NewRegistry()
	p := NewPipeline(r)
	p.Span().Commit()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, "# TYPE "+StageSecondsName+" histogram\n"); got != 1 {
		t.Errorf("stage family TYPE emitted %d times, want once:\n%s", got, out)
	}
	if got := strings.Count(out, StageSecondsName+`_bucket{stage="total",le="+Inf"} 1`); got != 1 {
		t.Errorf("total stage +Inf bucket missing:\n%s", out)
	}
}
