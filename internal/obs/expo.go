package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): one # HELP and # TYPE line
// per family, then each series. Histograms expose cumulative
// _bucket{le="..."} series ending at le="+Inf", plus _sum and _count.
//
// Families appear in first-registration order and series within a
// family in registration order, so scrapes are deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var families []string
	byFamily := map[string][]*Metric{}
	for _, m := range r.Gather() {
		if _, ok := byFamily[m.Name]; !ok {
			families = append(families, m.Name)
		}
		byFamily[m.Name] = append(byFamily[m.Name], m)
	}
	for _, name := range families {
		ms := byFamily[name]
		if help := ms[0].Help; help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, ms[0].Kind); err != nil {
			return err
		}
		for _, m := range ms {
			if err := writeSeries(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, m *Metric) error {
	switch m.Kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.Name, renderLabels(m.Labels, nil), m.Counter.Value())
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.Name, renderLabels(m.Labels, nil), m.Gauge.Value())
		return err
	case KindHistogram:
		s := m.Histogram.Snapshot()
		var cum uint64
		for i, b := range s.Buckets {
			cum += b
			le := "+Inf"
			if i < len(s.Bounds) {
				le = formatFloat(s.Bounds[i])
			}
			extra := []Label{{Key: "le", Value: le}}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, renderLabels(m.Labels, extra), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, renderLabels(m.Labels, nil), formatFloat(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, renderLabels(m.Labels, nil), s.Count)
		return err
	}
	return fmt.Errorf("obs: unknown metric kind %d", m.Kind)
}

// renderLabels formats {k="v",...}; extra labels (the histogram le)
// are appended after the series labels. Empty label sets render as
// nothing.
func renderLabels(labels, extra []Label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	n := 0
	for _, l := range append(append([]Label{}, labels...), extra...) {
		if n > 0 {
			sb.WriteByte(',')
		}
		n++
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
