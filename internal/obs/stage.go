package obs

import "time"

// Stage enumerates the eight Lazy Diagnosis pipeline stages a
// diagnosis span covers, in pipeline order. The numbering follows the
// paper's Figure 2 steps: failing-trace decode (2), trace processing
// into scope + partial order (3), hybrid points-to analysis (4),
// type-based ranking (5), bug-pattern computation (6), success-trace
// decode/observation fan-out (7/8), statistical F1 scoring (7), and
// the end-to-end total.
type Stage int

const (
	// StageDecode is failing-trace decode (step 2).
	StageDecode Stage = iota
	// StageTraceProc builds the executed scope and the
	// partially-ordered dynamic trace (step 3).
	StageTraceProc
	// StagePointsTo is the scope-restricted points-to solve (step 4);
	// near zero on an analysis-cache hit.
	StagePointsTo
	// StageRank is type-based candidate ranking (step 5).
	StageRank
	// StagePattern is bug-pattern computation, including the
	// deep-anchor and multi-variable extensions (step 6).
	StagePattern
	// StageObserve is the success-trace decode/observe fan-out across
	// the worker pool (steps 7–8).
	StageObserve
	// StageStatDiag is statistical diagnosis proper: scoring every
	// pattern's F1 over the observations (step 7).
	StageStatDiag
	// StageTotal is the whole server-side analysis for one failure.
	StageTotal
	// NumStages counts the stages above.
	NumStages
)

// StageNames lists the label values in Stage order.
var StageNames = [NumStages]string{
	"decode", "trace_process", "points_to", "rank",
	"pattern", "observe", "stat_diag", "total",
}

func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return StageNames[s]
}

// StageSecondsName is the metric family holding per-stage latency
// histograms, one series per stage label.
const StageSecondsName = "snorlax_stage_seconds"

// Pipeline is the per-stage latency surface of the diagnosis
// pipeline: one histogram per stage, all in one registry family.
type Pipeline struct {
	stages [NumStages]*Histogram
}

// NewPipeline registers the eight stage histograms on r and returns
// the pipeline.
func NewPipeline(r *Registry) *Pipeline {
	p := &Pipeline{}
	for st := Stage(0); st < NumStages; st++ {
		p.stages[st] = r.Histogram(StageSecondsName,
			"Wall-clock seconds spent in each Lazy Diagnosis pipeline stage, per diagnosis.",
			nil, L("stage", st.String()))
	}
	return p
}

// Stage returns the histogram for one stage.
func (p *Pipeline) Stage(s Stage) *Histogram { return p.stages[s] }

// Span collects one diagnosis's stage durations and commits them to
// the pipeline histograms in a single pass, so a diagnosis that
// errors out mid-pipeline records nothing and every stage histogram's
// count stays equal to the number of completed diagnoses.
//
// A nil *Span is a valid no-op recorder — the disabled-observability
// path costs two nil checks per stage.
type Span struct {
	p    *Pipeline
	durs [NumStages]time.Duration
}

// Span starts an empty span against the pipeline.
func (p *Pipeline) Span() *Span {
	if p == nil {
		return nil
	}
	return &Span{p: p}
}

// Record sets one stage's duration (later calls overwrite).
func (sp *Span) Record(s Stage, d time.Duration) {
	if sp == nil {
		return
	}
	sp.durs[s] = d
}

// Add accumulates into one stage's duration — for stages measured in
// several slices (ranking's deep-anchor re-ranks, say).
func (sp *Span) Add(s Stage, d time.Duration) {
	if sp == nil {
		return
	}
	sp.durs[s] += d
}

// Commit observes every stage into its histogram. Stages never
// recorded are committed as zero-duration observations, keeping all
// eight histogram counts in lockstep.
func (sp *Span) Commit() {
	if sp == nil {
		return
	}
	for st := Stage(0); st < NumStages; st++ {
		sp.p.stages[st].ObserveDuration(sp.durs[st])
	}
}
