package ranking

import (
	"testing"

	"snorlax/internal/ir"
	"snorlax/internal/pointsto"
)

// rankSrc models the paper's Figure 4: a failing load of a Queue*
// plus one store operating on Queue* (rank 1) and one store operating
// on an int* that aliases it through a cast (rank 2).
const rankSrc = `
module fig4
struct Queue {
  size: int
}
global fifo: *Queue

func main() {
entry:
  %q = new Queue
  store %q, @fifo
  %i1 = load @fifo
  store null:*Queue, @fifo
  %slotint = cast @fifo to **int
  %asint = cast %q to *int
  store %asint, %slotint
  %f = load @fifo
  %sz = fieldaddr %f, size
  %v = load %sz
  ret
}
`

func setup(t *testing.T) (*ir.Module, *pointsto.Andersen) {
	t.Helper()
	m, err := ir.Parse(rankSrc)
	if err != nil {
		t.Fatal(err)
	}
	return m, pointsto.NewAndersen(m, nil)
}

func failingFieldAddr(m *ir.Module) ir.Instr {
	var f ir.Instr
	m.Instrs(func(in ir.Instr) {
		if in.Op() == ir.OpFieldAddr {
			f = in
		}
	})
	return f
}

func TestFailingPointer(t *testing.T) {
	m, _ := setup(t)
	f := failingFieldAddr(m)
	p := FailingPointer(f)
	if p == nil {
		t.Fatal("no failing pointer for fieldaddr")
	}
	if p.Type().String() != "*Queue" {
		t.Errorf("failing pointer type = %s", p.Type())
	}
	var binInstr ir.Instr
	m.Instrs(func(in ir.Instr) {
		if in.Op() == ir.OpBin {
			binInstr = in
		}
	})
	if binInstr != nil && FailingPointer(binInstr) != nil {
		t.Error("bin instruction should have no failing pointer")
	}
}

func TestTypeBasedRanking(t *testing.T) {
	m, a := setup(t)
	f := failingFieldAddr(m)
	cands := Rank(m, f, MemAccesses, a, nil)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	// Expect both rank-1 (Queue* accesses) and rank-2 (int* accesses
	// reached via the cast) candidates.
	counts := CountByRank(cands)
	if counts[1] == 0 {
		t.Error("no rank-1 candidates (exact Queue* matches)")
	}
	if counts[2] == 0 {
		t.Error("no rank-2 candidates (cast-aliased int* accesses)")
	}
	// Rank-1 candidates must all sort before rank-2.
	lastRank := 0
	for _, c := range cands {
		if c.Rank < lastRank {
			t.Fatalf("candidates not sorted by rank: %v", cands)
		}
		lastRank = c.Rank
	}
	// The store through the **int-typed cast of the slot must be
	// rank 2; stores through the **Queue slot must be rank 1.
	for _, c := range cands {
		s, ok := c.Instr.(*ir.StoreInstr)
		if !ok {
			continue
		}
		wantRank := 1
		if s.Addr.Type().String() == "**int" {
			wantRank = 2
		}
		if c.Rank != wantRank {
			t.Errorf("store %s: rank = %d, want %d", s, c.Rank, wantRank)
		}
	}
}

func TestAnchorWalksToLoad(t *testing.T) {
	m, _ := setup(t)
	f := failingFieldAddr(m)
	anchor, operand := Anchor(f)
	load, ok := anchor.(*ir.LoadInstr)
	if !ok {
		t.Fatalf("anchor = %s, want the load of @fifo", anchor)
	}
	if _, isGlobal := load.Addr.(*ir.GlobalRef); !isGlobal {
		t.Errorf("anchor load address = %s, want @fifo", load.Addr)
	}
	if operand.Type().String() != "**Queue" {
		t.Errorf("anchor operand type = %s, want **Queue", operand.Type())
	}
}

func TestRankingExcludesFailingInstr(t *testing.T) {
	m, a := setup(t)
	f := failingFieldAddr(m)
	for _, c := range Rank(m, f, MemAccesses, a, nil) {
		if c.Instr == f {
			t.Error("failing instruction ranked as its own candidate")
		}
	}
}

func TestRankingHonorsScope(t *testing.T) {
	m, a := setup(t)
	f := failingFieldAddr(m)
	all := Rank(m, f, MemAccesses, a, nil)
	// Empty (non-nil) scope excludes everything.
	none := Rank(m, f, MemAccesses, a, pointsto.Scope{})
	if len(none) != 0 {
		t.Errorf("empty scope produced %d candidates", len(none))
	}
	if len(all) == 0 {
		t.Error("nil scope produced no candidates")
	}
}

func TestRankingSyncClass(t *testing.T) {
	src := `
module locks
global mu: mutex
global mv: mutex
func main() {
entry:
  lock @mu
  lock @mv
  unlock @mv
  unlock @mu
  lock @mu
  unlock @mu
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a := pointsto.NewAndersen(m, nil)
	var firstLock ir.Instr
	m.Instrs(func(in ir.Instr) {
		if firstLock == nil && in.Op() == ir.OpLock {
			firstLock = in
		}
	})
	cands := Rank(m, firstLock, SyncOps, a, nil)
	// Candidates must be lock/unlock ops on @mu only (2 more lock/unlock
	// pairs on mu = 3 ops excluding the failing one).
	if len(cands) != 3 {
		t.Fatalf("sync candidates = %d, want 3", len(cands))
	}
	for _, c := range cands {
		if !ir.IsSyncOp(c.Instr) {
			t.Errorf("non-sync candidate %s", c.Instr)
		}
	}
	// Mem class must not include lock ops.
	mem := Rank(m, firstLock, MemAccesses, a, nil)
	if len(mem) != 0 {
		t.Errorf("mem class candidates on a lock failure = %d, want 0", len(mem))
	}
}
