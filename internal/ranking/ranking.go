// Package ranking implements type-based ranking — step 5 of Lazy
// Diagnosis (§4.3 of the Snorlax paper).
//
// Given the instruction where a failure occurred, ranking collects
// every in-scope instruction whose accessed pointer may alias the
// failing instruction's pointer operand (per the hybrid points-to
// analysis) and orders them by how well their operand's static type
// matches the failing operand's type. Instructions operating on the
// exact type rank first; type-mismatched candidates (reachable only
// through casts) are kept at a lower rank — ranking prioritizes, it
// never discards (§4.3).
package ranking

import (
	"sort"

	"snorlax/internal/ir"
	"snorlax/internal/pointsto"
)

// Analysis is the points-to interface ranking needs; both Andersen
// and Steensgaard satisfy it.
type Analysis interface {
	PointsTo(v ir.Value) pointsto.ObjSet
	MayAlias(p, q ir.Value) bool
}

// Candidate is one ranked instruction.
type Candidate struct {
	Instr ir.Instr
	// Rank is 1 for exact type matches, 2 for mismatches; lower is
	// analyzed first.
	Rank int
}

// FailingPointer returns the pointer operand implicated by the
// failing instruction: the accessed pointer for memory and lock
// operations, or the base pointer for address computations (a crash
// on a null base faults there).
func FailingPointer(in ir.Instr) ir.Value {
	if p := ir.AccessedPointer(in); p != nil {
		return p
	}
	switch i := in.(type) {
	case *ir.FieldAddrInstr:
		return i.Base
	case *ir.IndexAddrInstr:
		return i.Base
	}
	return nil
}

// Anchor maps a faulting instruction back to the instruction whose
// operand's points-to set should seed the analysis — the paper's
// Figure 4, where the failing instruction I_f is the load of the
// corrupt Queue* pointer, not the downstream dereference that trapped.
//
// The walk follows the corrupt pointer's provenance backwards through
// address computations and casts: if the pointer was produced by a
// load, that load is the anchor (its address operand names the memory
// slot whose writers are the candidates). If provenance bottoms out
// at a parameter, allocation or call, the faulting instruction itself
// is the anchor. This mirrors RETracer's backward data-flow from a
// corrupt pointer, which the paper builds on (§1, §2).
func Anchor(failing ir.Instr) (anchor ir.Instr, operand ir.Value) {
	in := failing
	v := FailingPointer(in)
	if a, ok := failing.(*ir.AssertInstr); ok {
		// Custom failure mode (§7): the asserted condition's data
		// provenance leads to the load whose value violated the
		// invariant.
		if load := assertedLoad(a); load != nil {
			return load, load.Addr
		}
		return failing, nil
	}
	for {
		r, ok := v.(*ir.Reg)
		if !ok {
			return in, v
		}
		def := singleDef(in.Block().Parent, r)
		if def == nil {
			return in, v
		}
		switch d := def.(type) {
		case *ir.LoadInstr:
			return d, d.Addr
		case *ir.FieldAddrInstr:
			in, v = d, d.Base
		case *ir.IndexAddrInstr:
			in, v = d, d.Base
		case *ir.CastInstr:
			in, v = d, d.Val
		default:
			return in, v
		}
	}
}

// assertedLoad walks an assertion's condition back through comparison
// and arithmetic operands to the most recent load feeding it.
func assertedLoad(a *ir.AssertInstr) *ir.LoadInstr {
	loads := AssertedLoads(a)
	if len(loads) == 0 {
		return nil
	}
	return loads[0]
}

// AssertedLoads walks an assertion's condition back through
// comparisons, arithmetic and casts and returns every load feeding
// it, in discovery order. A violated invariant over several memory
// locations (a multi-variable atomicity violation, §7) anchors at
// several loads; single-location invariants anchor at one.
func AssertedLoads(a *ir.AssertInstr) []*ir.LoadInstr {
	fn := a.Block().Parent
	var loads []*ir.LoadInstr
	seen := map[*ir.LoadInstr]bool{}
	work := []ir.Value{a.Cond}
	for depth := 0; depth < 8 && len(work) > 0; depth++ {
		var next []ir.Value
		for _, v := range work {
			r, ok := v.(*ir.Reg)
			if !ok {
				continue
			}
			def := singleDef(fn, r)
			if def == nil {
				continue
			}
			switch d := def.(type) {
			case *ir.LoadInstr:
				if !seen[d] {
					seen[d] = true
					loads = append(loads, d)
				}
			case *ir.BinInstr:
				next = append(next, d.X, d.Y)
			case *ir.CastInstr:
				next = append(next, d.Val)
			}
		}
		work = next
	}
	return loads
}

// ValueLoads returns the loads feeding value v inside fn, walking
// unique-definition chains through arithmetic, casts and address
// computations (depth-bounded). Deep anchoring (§7: the failing
// instruction may not be part of the bug pattern) uses this to chase
// a corrupt value's provenance through a store's operand.
func ValueLoads(fn *ir.Func, v ir.Value) []*ir.LoadInstr {
	var loads []*ir.LoadInstr
	seen := map[*ir.LoadInstr]bool{}
	work := []ir.Value{v}
	for depth := 0; depth < 8 && len(work) > 0; depth++ {
		var next []ir.Value
		for _, x := range work {
			r, ok := x.(*ir.Reg)
			if !ok {
				continue
			}
			def := singleDef(fn, r)
			if def == nil {
				continue
			}
			switch d := def.(type) {
			case *ir.LoadInstr:
				if !seen[d] {
					seen[d] = true
					loads = append(loads, d)
				}
			case *ir.BinInstr:
				next = append(next, d.X, d.Y)
			case *ir.CastInstr:
				next = append(next, d.Val)
			case *ir.FieldAddrInstr:
				next = append(next, d.Base)
			case *ir.IndexAddrInstr:
				next = append(next, d.Base)
			}
		}
		work = next
	}
	return loads
}

// singleDef returns the unique instruction in fn defining r, or nil
// when r has zero or several static definitions (parameters have
// none; multiply-defined registers are ambiguous, so the walk stops).
func singleDef(fn *ir.Func, r *ir.Reg) ir.Instr {
	var def ir.Instr
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Def() == r {
				if def != nil {
					return nil
				}
				def = in
			}
		}
	}
	return def
}

// CandidateClass selects which instructions can participate in a bug
// pattern for the observed failure kind.
type CandidateClass int

// The candidate classes.
const (
	// MemAccesses selects loads and stores (crashes: order and
	// atomicity violations).
	MemAccesses CandidateClass = iota
	// SyncOps selects lock and unlock operations (deadlocks).
	SyncOps
)

func classMatch(class CandidateClass, in ir.Instr) bool {
	switch class {
	case MemAccesses:
		return ir.IsMemAccess(in)
	case SyncOps:
		return ir.IsSyncOp(in)
	}
	return false
}

// Rank returns the candidate instructions for the failure at failing,
// sorted by rank (exact type matches first) and then by PC for
// determinism. Only instructions inside scope are considered; the
// failing instruction itself is excluded.
func Rank(mod *ir.Module, failing ir.Instr, class CandidateClass, pts Analysis, scope pointsto.Scope) []Candidate {
	anchor := failing
	failOperand := FailingPointer(failing)
	if class == MemAccesses {
		anchor, failOperand = Anchor(failing)
	}
	if failOperand == nil {
		return nil
	}
	failType := failOperand.Type()
	var out []Candidate
	mod.Instrs(func(in ir.Instr) {
		if in == anchor || in == failing || !scope.In(in) || !classMatch(class, in) {
			return
		}
		p := ir.AccessedPointer(in)
		if p == nil || !pts.MayAlias(p, failOperand) {
			return
		}
		rank := 2
		if ir.TypesEqual(p.Type(), failType) {
			rank = 1
		}
		out = append(out, Candidate{Instr: in, Rank: rank})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Instr.PC() < out[j].Instr.PC()
	})
	return out
}

// CountByRank returns how many candidates hold each rank; the
// Figure 7 experiment reports the reduction from rank filtering.
func CountByRank(cands []Candidate) map[int]int {
	out := make(map[int]int)
	for _, c := range cands {
		out[c.Rank]++
	}
	return out
}
