package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Field-level encoding primitives for frame payloads: unsigned and
// zigzag varints for integers, uvarint-length-prefixed bytes for
// strings, and fixed 8-byte little-endian IEEE 754 bits for float64
// (lossless — the differential oracle against gob requires exact
// round-trips, so floats are never formatted or truncated).

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v as a zigzag-encoded signed varint.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendBool appends v as one byte (0 or 1).
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendString appends s as a uvarint length followed by its bytes.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends p as a uvarint length followed by its bytes.
func AppendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendFloat64 appends v as fixed 8-byte little-endian IEEE 754 bits.
func AppendFloat64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// ErrDecode is the base error every Dec failure wraps.
var ErrDecode = errors.New("wire: malformed field encoding")

// Dec decodes the primitives AppendX produce, with a sticky error: the
// first malformed field poisons the decoder and every later read
// returns zero values, so call sites check Err once at the end instead
// of after every field. Views returned by Bytes alias the input
// buffer.
type Dec struct {
	b   []byte
	err error
}

// NewDec returns a decoder over b.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the sticky decode error, if any.
func (d *Dec) Err() error { return d.err }

// Len returns how many undecoded bytes remain.
func (d *Dec) Len() int { return len(d.b) }

func (d *Dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrDecode, what)
	}
}

// Fail poisons the decoder with a caller-detected violation (an
// implausible count, a semantic bound) so it fails like any malformed
// field.
func (d *Dec) Fail(what string) { d.fail(what) }

// Uvarint decodes an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Varint decodes a zigzag-encoded signed varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Bool decodes one boolean byte.
func (d *Dec) Bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) < 1 {
		d.fail("short bool")
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	if v > 1 {
		d.fail("bad bool")
		return false
	}
	return v == 1
}

// String decodes a length-prefixed string.
func (d *Dec) String() string {
	return string(d.Bytes())
}

// Bytes decodes a length-prefixed byte run as a view into the input.
func (d *Dec) Bytes() []byte {
	if d.err != nil {
		return nil
	}
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail("length prefix past end of payload")
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

// Float64 decodes fixed 8-byte little-endian IEEE 754 bits.
func (d *Dec) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("short float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}
