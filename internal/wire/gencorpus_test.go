package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestRegenerateWireFuzzCorpus rewrites the pinned FuzzWireDecode seed
// corpus under testdata/fuzz. It only runs when SNORLAX_REGEN_CORPUS=1
// so the checked-in seeds stay stable; regenerate after any change to
// the frame format and commit the result.
func TestRegenerateWireFuzzCorpus(t *testing.T) {
	if os.Getenv("SNORLAX_REGEN_CORPUS") != "1" {
		t.Skip("set SNORLAX_REGEN_CORPUS=1 to rewrite the seed corpus")
	}
	frame := func(typ byte, payload []byte) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.Frame(typ, payload)
		w.Flush()
		w.Release()
		return buf.Bytes()
	}
	multi := append(frame(FrameRequest, []byte("envelope")),
		frame(FrameChunk, bytes.Repeat([]byte{0xC4}, 200))...)
	multi = append(multi, frame(FrameResponse, []byte("ok"))...)

	crcFlip := frame(FrameChunk, []byte("will not verify"))
	crcFlip[len(crcFlip)-1] ^= 0xFF

	hdrFlip := frame(FrameRequest, []byte("hdr"))
	hdrFlip[2] ^= 0x10

	var oversize [headerSize]byte
	binary.LittleEndian.PutUint32(oversize[0:4], 1<<30)
	binary.LittleEndian.PutUint32(oversize[4:8], 0)
	binary.LittleEndian.PutUint32(oversize[8:12], Checksum(oversize[0:8]))

	seeds := map[string][]byte{
		"seed-empty":             {},
		"seed-clean-stream":      multi,
		"seed-preamble":          append([]byte(Magic+"\x01"), frame(FrameRequest, []byte("x"))...),
		"seed-truncated-header":  frame(FrameRequest, []byte("cut"))[:7],
		"seed-truncated-payload": multi[:len(multi)-3],
		"seed-crc-flip":          append(crcFlip, frame(FrameChunk, []byte("after"))...),
		"seed-header-flip":       hdrFlip,
		"seed-oversize-declared": oversize[:],
		"seed-garbage":           []byte("\x00\x01\x02not a frame at all\xff\xfe"),
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWireDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
