// Package wire is the framing layer of the snorlax binary wire
// protocol: length-prefixed, CRC32C-checksummed frames carried over
// any byte stream, with buffer pooling and write coalescing so the
// fleet's hot upload path stays near-zero-alloc.
//
// The format deliberately mirrors the durable store's WAL record
// framing (internal/store) — the in-house exemplar for "boring,
// recoverable, length-prefixed": every frame is a fixed 12-byte
// header followed by the payload,
//
//	u32 LE  n      payload byte count (>= 1; payload[0] is the frame type)
//	u32 LE  pcrc   CRC32C (Castagnoli) of the payload
//	u32 LE  hcrc   CRC32C of the first 8 header bytes
//	n bytes payload
//
// The header checksum is what makes the oversize rule trustworthy
// under a hostile or faulty network: a frame whose declared length
// breaches the limit is only treated as a deterministic protocol
// violation when hcrc proves the length field arrived intact
// (ErrFrameTooLarge); a corrupted header is indistinguishable from
// line noise and surfaces as ErrHeaderCorrupt, which readers treat as
// a transport failure — retried, never rejected. A payload checksum
// mismatch (ErrPayloadCorrupt) leaves the stream aligned on the next
// frame boundary, so unlike a gob stream the connection CAN resync
// past a rejected frame — the property the whole binary rewrite
// exists to provide.
//
// A connection declares the binary protocol with a 5-byte preamble
// (magic "SNXW" plus a version byte) before its first frame; legacy
// gob connections send no preamble, which is how a server tells the
// two apart (see ReadPreamble).
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Magic opens the binary-protocol preamble. A gob stream can never
// start with these bytes: gob's first message is the type descriptor
// for the request struct, whose leading byte-count byte is fixed per
// type and checked against this constant by the proto tests.
const Magic = "SNXW"

// Version1 is the first (and current) binary protocol version,
// carried in the preamble's fifth byte.
const Version1 byte = 0x01

// Frame types (payload[0]).
const (
	// FrameRequest carries a request envelope: every field of the
	// message except snapshot ring bytes, which follow as FrameChunk
	// frames in the order the envelope's thread tables declare.
	FrameRequest byte = 0x01
	// FrameResponse carries one complete response.
	FrameResponse byte = 0x02
	// FrameChunk carries a run of snapshot ring bytes (at most
	// MaxChunkBytes of them), attributed to threads purely by the
	// envelope's declared order: the message's rings form one logical
	// byte stream, so a chunk may span several small threads
	// (coalescing) and a large thread may span several chunks.
	FrameChunk byte = 0x03
)

// headerSize is the fixed frame header length.
const headerSize = 12

// MaxChunkBytes caps one FrameChunk's ring bytes. Streaming receivers
// (the analysis server, the shard router) therefore never hold more
// than this much of a snapshot per frame, no matter how large the
// snapshot is.
const MaxChunkBytes = 128 << 10

// DefaultMaxSnapshotBytes caps the total ring bytes of one uploaded
// snapshot (the semantic tier of the oversize rule). A 64 KB-per-thread
// ring snapshot from a program with a few dozen threads is a few MB;
// the default leaves an order of magnitude of headroom while still
// stopping a runaway client long before the server's memory is at
// stake.
const DefaultMaxSnapshotBytes = 64 << 20

// FrameSlackBytes is how much a single message may exceed the
// snapshot cap (encoding overhead, non-snapshot fields) before the
// frame-limit tier kills the connection.
const FrameSlackBytes = 64 << 10

// Limits is the single home of the protocol's two-tier oversize rule,
// shared verbatim by the analysis server and the shard router so the
// two can never diverge:
//
//   - Semantic oversize — a snapshot whose (checksum-verified) ring
//     bytes exceed SnapshotCap — is a deterministic protocol
//     rejection: the peer gets an "error" reply and the connection
//     keeps serving, with the binary framing resyncing past the
//     rejected message's remaining chunk frames.
//   - A frame-limit breach — one message (gob) or one frame (binary)
//     declaring more than FrameLimit bytes — gets the "error" reply
//     and then the connection closes: a gob stream cannot be resumed
//     mid-message, and a binary frame that large is a protocol
//     violation no honest client produces.
//
// MaxSnapshotBytes follows the server's configuration convention:
// 0 means DefaultMaxSnapshotBytes, negative means unlimited.
type Limits struct {
	MaxSnapshotBytes int64
}

// SnapshotCap resolves the semantic-tier cap; 0 means unlimited.
func (l Limits) SnapshotCap() int64 {
	switch {
	case l.MaxSnapshotBytes < 0:
		return 0
	case l.MaxSnapshotBytes == 0:
		return DefaultMaxSnapshotBytes
	}
	return l.MaxSnapshotBytes
}

// FrameLimit resolves the frame-limit tier: twice the snapshot cap
// plus slack, or 0 (unlimited) when the cap is unlimited.
func (l Limits) FrameLimit() int64 {
	cap := l.SnapshotCap()
	if cap == 0 {
		return 0
	}
	return 2*cap + FrameSlackBytes
}

// castagnoli is the CRC32C table, the same polynomial the WAL uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the frame checksum function (CRC32C).
func Checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// Frame-level errors. Readers distinguish three failure classes:
// a deterministic protocol violation (ErrFrameTooLarge, length field
// proven intact), a recoverable corruption that leaves the stream
// aligned (ErrPayloadCorrupt), and corruption that loses alignment
// (ErrHeaderCorrupt) — the last is handled like any transport failure.
var (
	ErrFrameTooLarge  = errors.New("wire: frame exceeds frame limit")
	ErrHeaderCorrupt  = errors.New("wire: frame header checksum mismatch")
	ErrPayloadCorrupt = errors.New("wire: frame payload checksum mismatch")
)

// bufPool recycles frame payload buffers across connections; steady
// state reads and writes allocate nothing.
var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 4096) }}

func getBuf() []byte { return bufPool.Get().([]byte)[:0] }
func putBuf(b []byte) {
	if cap(b) > 0 {
		bufPool.Put(b[:0])
	}
}

// Writer frames payloads onto an io.Writer, coalescing the frames of
// one message into as few Write calls as possible (batch framing): a
// request envelope plus its chunk frames accumulate in one pooled
// buffer and go out on Flush, or earlier when the buffer passes the
// flush threshold.
type Writer struct {
	w   io.Writer
	buf []byte
}

// flushThreshold bounds the write coalescing buffer.
const flushThreshold = 256 << 10

// NewWriter returns a framing writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, buf: getBuf()}
}

// Preamble writes the binary-protocol preamble (magic + version).
// Call it once, before the first frame.
func (w *Writer) Preamble(version byte) error {
	w.buf = append(w.buf, Magic...)
	w.buf = append(w.buf, version)
	return nil
}

// Frame appends one frame. The payload is copied, so the caller may
// reuse it immediately.
func (w *Writer) Frame(typ byte, payload []byte) error {
	return w.FrameParts(typ, payload)
}

// FrameParts appends one frame whose payload is the concatenation of
// parts — the vectored form of Frame. It exists for the codec's chunk
// coalescing: ring slices from many threads become a single frame (one
// header, one checksum) without being gathered into an intermediate
// buffer first.
func (w *Writer) FrameParts(typ byte, parts ...[]byte) error {
	size := 1
	for _, p := range parts {
		size += len(p)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(size))
	crc := crc32.Update(0, castagnoli, []byte{typ})
	for _, p := range parts {
		crc = crc32.Update(crc, castagnoli, p)
	}
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	binary.LittleEndian.PutUint32(hdr[8:12], Checksum(hdr[0:8]))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, typ)
	for _, p := range parts {
		w.buf = append(w.buf, p...)
	}
	if len(w.buf) >= flushThreshold {
		return w.Flush()
	}
	return nil
}

// Raw appends pre-framed bytes verbatim — frames captured by a
// Reader's NextRaw on another connection. The relay path of the shard
// router is built on this pair: checksums computed by the original
// sender cross the hop untouched, so a forwarded message is
// byte-identical to the one received and is never re-framed.
func (w *Writer) Raw(p []byte) error {
	w.buf = append(w.buf, p...)
	if len(w.buf) >= flushThreshold {
		return w.Flush()
	}
	return nil
}

// Flush writes every buffered frame.
func (w *Writer) Flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.w.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// Release returns the writer's buffer to the pool. The writer is
// unusable afterwards; call it when the connection closes.
func (w *Writer) Release() {
	putBuf(w.buf)
	w.buf = nil
}

// Reader reads frames from an io.Reader (wrap it in a bufio.Reader —
// the reader issues small header reads). Its payload buffer is pooled
// and reused: the slice returned by Next is valid only until the next
// call.
type Reader struct {
	r     io.Reader
	limit int64
	hdr   [headerSize]byte
	buf   []byte
}

// NewReader returns a framing reader over r enforcing the given frame
// limit (0 = unlimited).
func NewReader(r io.Reader, limit int64) *Reader {
	return &Reader{r: r, limit: limit, buf: getBuf()}
}

// Next reads one frame and returns its type byte and payload (valid
// until the next call). Error classes:
//
//   - ErrFrameTooLarge: the declared length breaches the frame limit
//     and the header checksum proves the length arrived intact — a
//     deterministic protocol violation (reply, then close).
//   - ErrPayloadCorrupt: the payload failed its checksum; the stream
//     is still aligned, so a further Next returns the following frame.
//   - ErrHeaderCorrupt, io errors: the stream is unusable.
func (r *Reader) Next() (typ byte, payload []byte, err error) {
	typ, _, body, err := r.NextRaw()
	if err != nil {
		return 0, nil, err
	}
	return typ, body[1:], nil
}

// NextRaw reads one frame like Next but returns the verbatim 12-byte
// header and the full body (type byte plus payload), both
// checksum-verified and valid until the next call. A relay appends
// hdr then body to a Writer.Raw buffer and the frame crosses the hop
// byte-identically — no re-framing, no second checksum pass on the
// write side.
func (r *Reader) NextRaw() (typ byte, hdr, body []byte, err error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		return 0, nil, nil, err
	}
	if Checksum(r.hdr[0:8]) != binary.LittleEndian.Uint32(r.hdr[8:12]) {
		return 0, nil, nil, ErrHeaderCorrupt
	}
	n := int64(binary.LittleEndian.Uint32(r.hdr[0:4]))
	if n < 1 {
		return 0, nil, nil, fmt.Errorf("%w: zero-length frame", ErrHeaderCorrupt)
	}
	if r.limit > 0 && n > r.limit {
		return 0, nil, nil, ErrFrameTooLarge
	}
	if int64(cap(r.buf)) < n {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, nil, err
	}
	if Checksum(r.buf) != binary.LittleEndian.Uint32(r.hdr[4:8]) {
		return 0, nil, nil, ErrPayloadCorrupt
	}
	return r.buf[0], r.hdr[:], r.buf, nil
}

// Release returns the reader's buffer to the pool. The reader is
// unusable afterwards.
func (r *Reader) Release() {
	putBuf(r.buf)
	r.buf = nil
}

// ReadPreamble sniffs br for the binary-protocol preamble. When the
// next bytes are the magic, the full preamble is consumed and the
// declared version returned with binary=true; otherwise nothing is
// consumed (binary=false) and the stream should be served as legacy
// gob. An immediately-closed connection (EOF before any byte)
// surfaces the read error.
func ReadPreamble(br *bufio.Reader) (version byte, binary bool, err error) {
	head, err := br.Peek(len(Magic))
	if err != nil || string(head) != Magic {
		if err != nil && len(head) > 0 {
			// A short non-magic prefix belongs to a (truncated) gob
			// stream; let the gob decoder surface the failure.
			err = nil
		}
		return 0, false, err
	}
	if _, err := br.Discard(len(Magic)); err != nil {
		return 0, false, err
	}
	v, err := br.ReadByte()
	if err != nil {
		return 0, false, err
	}
	return v, true, nil
}

// LimitedReader enforces the frame-limit tier on the legacy gob path,
// where no length prefix exists: it meters bytes handed to the gob
// decoder and fails once a single message's budget is spent, so a
// multi-gigabyte "snapshot" is cut off after the limit, not after the
// heap. Reset re-arms the budget before each message. (The decoder's
// internal buffering can read slightly ahead into the next message;
// the frame limit is deliberately slack, so attributing those bytes
// to the current budget is harmless.)
//
// Both the analysis server and the shard router mount this same
// defense with the same semantics: a tripped limit earns the client
// an "error" reply and then the connection closes, because a
// half-read gob stream cannot be resynchronized.
type LimitedReader struct {
	R         io.Reader
	Limit     int64
	remaining int64
	tripped   bool
}

// Reset re-arms the budget for the next message.
func (l *LimitedReader) Reset() {
	l.remaining = l.Limit
	l.tripped = false
}

// Tripped reports whether the current message blew the limit.
func (l *LimitedReader) Tripped() bool { return l.tripped }

func (l *LimitedReader) Read(p []byte) (int, error) {
	if l.Limit <= 0 {
		return l.R.Read(p)
	}
	if l.remaining <= 0 {
		l.tripped = true
		return 0, ErrFrameTooLarge
	}
	if int64(len(p)) > l.remaining {
		p = p[:l.remaining]
	}
	n, err := l.R.Read(p)
	l.remaining -= int64(n)
	return n, err
}
