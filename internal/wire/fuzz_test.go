package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWireDecode holds the framing reader to its stream contract on
// arbitrary bytes (the FuzzWALReplay discipline, ported to the wire):
//
//   - Next never panics and never spins: every call either consumes
//     input or returns a terminal io error.
//   - A successful frame re-encodes to exactly the bytes consumed for
//     it (decode∘encode identity — the relay/oracle property).
//   - ErrPayloadCorrupt consumes exactly one frame (header + declared
//     payload), leaving the stream aligned; every other error ends the
//     stream.
//
// The pinned seed corpus in testdata/fuzz/FuzzWireDecode covers a
// clean multi-frame stream, truncations, a CRC flip, an oversize
// declaration, and garbage — regenerate with gencorpus_test.go's
// TestRegenerateWireFuzzCorpus when the format changes.
func FuzzWireDecode(f *testing.F) {
	clean := func(frames ...[]byte) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i, p := range frames {
			w.Frame(byte(i%3)+1, p)
		}
		w.Flush()
		w.Release()
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add(clean([]byte("hello"), nil, bytes.Repeat([]byte{0xEE}, 500)))
	f.Add(clean([]byte("truncated"))[:headerSize+3])
	f.Add([]byte("SNXW\x01garbage after a preamble"))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, limit := range []int64{0, 64} {
			cr := &countReader{r: bytes.NewReader(data)}
			r := NewReader(cr, limit)
			for steps := 0; steps <= len(data)+1; steps++ {
				before := cr.n
				typ, payload, err := r.Next()
				if err == nil {
					consumed := data[before:cr.n]
					var buf bytes.Buffer
					w := NewWriter(&buf)
					w.Frame(typ, payload)
					w.Flush()
					w.Release()
					if !bytes.Equal(buf.Bytes(), consumed) {
						t.Fatalf("limit %d: frame at %d does not re-encode to its wire bytes", limit, before)
					}
					continue
				}
				if errors.Is(err, ErrPayloadCorrupt) {
					// Aligned skip: exactly header + declared payload.
					if cr.n-before <= headerSize {
						t.Fatalf("limit %d: payload-corrupt frame consumed only %d bytes", limit, cr.n-before)
					}
					continue
				}
				if cr.n > len(data) {
					t.Fatalf("limit %d: consumed %d of %d bytes", limit, cr.n, len(data))
				}
				break
			}
			r.Release()
		}
	})
}

type countReader struct {
	r io.Reader
	n int
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}
