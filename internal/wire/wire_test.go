package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

// frameBytes encodes one frame (header + type + payload) standalone.
func frameBytes(t *testing.T, typ byte, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Frame(typ, payload); err != nil {
		t.Fatalf("Frame: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	w.Release()
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil, // empty payload: the frame is just its type byte
		{0x00},
		[]byte("hello"),
		bytes.Repeat([]byte{0xAB}, 4096),
		bytes.Repeat([]byte("ring bytes "), 20_000), // > flushThreshold
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Preamble(Version1); err != nil {
		t.Fatalf("Preamble: %v", err)
	}
	types := []byte{FrameRequest, FrameChunk, FrameResponse, FrameChunk, FrameRequest}
	for i, p := range payloads {
		if err := w.Frame(types[i], p); err != nil {
			t.Fatalf("Frame %d: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	w.Release()

	br := bufio.NewReader(&buf)
	v, bin, err := ReadPreamble(br)
	if err != nil || !bin || v != Version1 {
		t.Fatalf("ReadPreamble = (%#x, %v, %v), want (%#x, true, nil)", v, bin, err, Version1)
	}
	r := NewReader(br, 0)
	defer r.Release()
	for i, p := range payloads {
		typ, got, err := r.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if typ != types[i] {
			t.Fatalf("frame %d type = %#x, want %#x", i, typ, types[i])
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d payload mismatch: %d bytes, want %d", i, len(got), len(p))
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next after last frame = %v, want io.EOF", err)
	}
}

// TestTruncatedAtEveryPrefix feeds the reader every proper prefix of a
// valid two-frame stream: none may succeed past the frames the prefix
// fully contains, and every failure must be a clean io error (EOF
// before any header byte, ErrUnexpectedEOF mid-frame) or a checksum
// error — never a wrong payload.
func TestTruncatedAtEveryPrefix(t *testing.T) {
	full := append(frameBytes(t, FrameRequest, []byte("first frame")),
		frameBytes(t, FrameChunk, []byte("second"))...)
	first := len(full) - len(frameBytes(t, FrameChunk, []byte("second")))
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]), 0)
		wantFrames := 0
		if cut >= first {
			wantFrames = 1
		}
		for i := 0; i < wantFrames; i++ {
			if _, _, err := r.Next(); err != nil {
				t.Fatalf("cut=%d: frame %d unexpectedly failed: %v", cut, i, err)
			}
		}
		_, _, err := r.Next()
		switch {
		case err == nil:
			t.Fatalf("cut=%d: truncated frame read succeeded", cut)
		case err == io.EOF, err == io.ErrUnexpectedEOF:
		default:
			t.Fatalf("cut=%d: err = %v, want EOF class", cut, err)
		}
		r.Release()
	}
}

// TestEveryByteFlipDetected flips each byte of a valid frame in turn;
// every flip must surface as an error — a single corrupted byte can
// never yield a successful read.
func TestEveryByteFlipDetected(t *testing.T) {
	orig := frameBytes(t, FrameRequest, []byte("checksummed payload"))
	for i := range orig {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0x01
		r := NewReader(bytes.NewReader(mut), 0)
		_, _, err := r.Next()
		if err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
		switch {
		case i < headerSize && !errors.Is(err, ErrHeaderCorrupt):
			t.Fatalf("flip at header byte %d: err = %v, want ErrHeaderCorrupt", i, err)
		case i >= headerSize && !errors.Is(err, ErrPayloadCorrupt) && err != io.ErrUnexpectedEOF:
			// Flipping a payload byte breaks pcrc; flipping nothing
			// else can reach here.
			t.Fatalf("flip at payload byte %d: err = %v, want ErrPayloadCorrupt", i, err)
		}
		r.Release()
	}
}

// TestOversizeFrame pins the two-tier trust rule: a limit breach only
// counts as the deterministic ErrFrameTooLarge when the header
// checksum proves the length field intact; a breach declared by a
// corrupted header is ErrHeaderCorrupt (transport class).
func TestOversizeFrame(t *testing.T) {
	const limit = 1024
	mk := func(n uint32, corruptHdr bool) []byte {
		var hdr [headerSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], n)
		binary.LittleEndian.PutUint32(hdr[4:8], 0xDEAD)
		binary.LittleEndian.PutUint32(hdr[8:12], Checksum(hdr[0:8]))
		if corruptHdr {
			hdr[0] ^= 0xFF
		}
		return hdr[:]
	}
	if _, _, err := NewReader(bytes.NewReader(mk(limit+1, false)), limit).Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("intact oversize header: err = %v, want ErrFrameTooLarge", err)
	}
	if _, _, err := NewReader(bytes.NewReader(mk(limit+1, true)), limit).Next(); !errors.Is(err, ErrHeaderCorrupt) {
		t.Fatalf("corrupt oversize header: err = %v, want ErrHeaderCorrupt", err)
	}
	// At the limit exactly: not oversize (payload is then truncated here).
	if _, _, err := NewReader(bytes.NewReader(mk(limit, false)), limit).Next(); errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("frame at exactly the limit rejected as oversize")
	}
	// Unlimited reader never trips the limit tier.
	if _, _, err := NewReader(bytes.NewReader(mk(1<<31-1, false)), 0).Next(); errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("unlimited reader enforced a frame limit")
	}
}

func TestZeroLengthFrame(t *testing.T) {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[8:12], Checksum(hdr[0:8]))
	_, _, err := NewReader(bytes.NewReader(hdr[:]), 0).Next()
	if !errors.Is(err, ErrHeaderCorrupt) {
		t.Fatalf("zero-length frame: err = %v, want ErrHeaderCorrupt", err)
	}
}

// TestResyncAfterPayloadCorruption is the property the binary rewrite
// exists for: a payload checksum failure leaves the stream aligned,
// so the next Next returns the following frame intact.
func TestResyncAfterPayloadCorruption(t *testing.T) {
	bad := frameBytes(t, FrameChunk, bytes.Repeat([]byte{0x55}, 300))
	bad[headerSize+37] ^= 0x80 // corrupt a payload byte, header intact
	good := frameBytes(t, FrameResponse, []byte("survivor"))
	r := NewReader(bytes.NewReader(append(bad, good...)), 0)
	defer r.Release()
	if _, _, err := r.Next(); !errors.Is(err, ErrPayloadCorrupt) {
		t.Fatalf("first frame: err = %v, want ErrPayloadCorrupt", err)
	}
	typ, payload, err := r.Next()
	if err != nil || typ != FrameResponse || string(payload) != "survivor" {
		t.Fatalf("resync read = (%#x, %q, %v), want the survivor frame", typ, payload, err)
	}
}

func TestReadPreamble(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		version byte
		binary  bool
		wantErr bool
		left    string // unconsumed remainder
	}{
		{name: "binary v1", in: Magic + "\x01rest", version: 1, binary: true, left: "rest"},
		{name: "future version", in: Magic + "\x7f", version: 0x7f, binary: true},
		{name: "gob stream untouched", in: "\x2c\xff\x81gobgob", left: "\x2c\xff\x81gobgob"},
		{name: "short non-magic prefix", in: "\x2c", left: "\x2c"},
		{name: "empty stream", in: "", wantErr: true},
		{name: "magic but no version byte", in: Magic, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			br := bufio.NewReader(strings.NewReader(tc.in))
			v, bin, err := ReadPreamble(br)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ReadPreamble = (%#x, %v, nil), want error", v, bin)
				}
				return
			}
			if err != nil || bin != tc.binary || v != tc.version {
				t.Fatalf("ReadPreamble = (%#x, %v, %v), want (%#x, %v, nil)", v, bin, err, tc.version, tc.binary)
			}
			rest, _ := io.ReadAll(br)
			if string(rest) != tc.left {
				t.Fatalf("remainder = %q, want %q", rest, tc.left)
			}
		})
	}
}

func TestLimits(t *testing.T) {
	cases := []struct {
		max        int64
		cap, limit int64
	}{
		{0, DefaultMaxSnapshotBytes, 2*DefaultMaxSnapshotBytes + FrameSlackBytes},
		{-1, 0, 0},
		{1 << 20, 1 << 20, 2<<20 + FrameSlackBytes},
	}
	for _, tc := range cases {
		l := Limits{MaxSnapshotBytes: tc.max}
		if got := l.SnapshotCap(); got != tc.cap {
			t.Errorf("Limits{%d}.SnapshotCap() = %d, want %d", tc.max, got, tc.cap)
		}
		if got := l.FrameLimit(); got != tc.limit {
			t.Errorf("Limits{%d}.FrameLimit() = %d, want %d", tc.max, got, tc.limit)
		}
	}
}

func TestLimitedReader(t *testing.T) {
	src := strings.Repeat("x", 100)
	lr := &LimitedReader{R: strings.NewReader(src), Limit: 10}
	lr.Reset()
	if n, err := io.ReadFull(lr, make([]byte, 10)); n != 10 || err != nil {
		t.Fatalf("within budget: (%d, %v)", n, err)
	}
	if lr.Tripped() {
		t.Fatalf("tripped before the budget was exceeded")
	}
	if _, err := lr.Read(make([]byte, 1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("over budget: err = %v, want ErrFrameTooLarge", err)
	}
	if !lr.Tripped() {
		t.Fatalf("Tripped() = false after the budget tripped")
	}
	lr.Reset()
	if lr.Tripped() {
		t.Fatalf("Reset did not clear the trip")
	}
	if n, err := io.ReadFull(lr, make([]byte, 10)); n != 10 || err != nil {
		t.Fatalf("after Reset: (%d, %v)", n, err)
	}

	// Limit <= 0 is a pure passthrough: no metering, no trip.
	pass := &LimitedReader{R: strings.NewReader(src)}
	if n, err := io.ReadFull(pass, make([]byte, 100)); n != 100 || err != nil {
		t.Fatalf("passthrough: (%d, %v)", n, err)
	}
	if pass.Tripped() {
		t.Fatalf("passthrough tripped")
	}
}

func TestEncodingRoundTrip(t *testing.T) {
	var b []byte
	uvals := []uint64{0, 1, 127, 128, 1<<32 - 1, math.MaxUint64}
	ivals := []int64{0, 1, -1, 63, -64, math.MinInt64, math.MaxInt64}
	fvals := []float64{0, math.Copysign(0, -1), 1.5, math.Inf(1), math.Inf(-1), math.NaN(), math.SmallestNonzeroFloat64}
	svals := []string{"", "a", "snapshot ring \x00\xff bytes", strings.Repeat("λ", 300)}
	for _, v := range uvals {
		b = AppendUvarint(b, v)
	}
	for _, v := range ivals {
		b = AppendVarint(b, v)
	}
	for _, v := range fvals {
		b = AppendFloat64(b, v)
	}
	for _, v := range svals {
		b = AppendString(b, v)
	}
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendBytes(b, []byte{1, 2, 3})

	d := NewDec(b)
	for i, want := range uvals {
		if got := d.Uvarint(); got != want {
			t.Fatalf("uvarint %d = %d, want %d", i, got, want)
		}
	}
	for i, want := range ivals {
		if got := d.Varint(); got != want {
			t.Fatalf("varint %d = %d, want %d", i, got, want)
		}
	}
	for i, want := range fvals {
		got := d.Float64()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("float %d = %v (bits %#x), want %v", i, got, math.Float64bits(got), want)
		}
	}
	for i, want := range svals {
		if got := d.String(); got != want {
			t.Fatalf("string %d = %q, want %q", i, got, want)
		}
	}
	if !d.Bool() || d.Bool() {
		t.Fatalf("bool round-trip failed")
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decoder error after clean stream: %v", err)
	}
	if d.Len() != 0 {
		t.Fatalf("%d bytes left over", d.Len())
	}
}

func TestDecoderSticksOnError(t *testing.T) {
	// A bool byte > 1 is invalid; everything after the first failure
	// returns zero values and the first error sticks.
	b := AppendUvarint([]byte{0x02}, 7)
	d := NewDec(b)
	if d.Bool() {
		t.Fatalf("invalid bool decoded as true")
	}
	if err := d.Err(); err == nil {
		t.Fatalf("invalid bool did not set the decoder error")
	}
	if got := d.Uvarint(); got != 0 {
		t.Fatalf("decode after error = %d, want 0", got)
	}

	// Truncated string length: sticky error, no panic.
	d = NewDec(AppendUvarint(nil, 1000))
	if s := d.String(); s != "" || d.Err() == nil {
		t.Fatalf("truncated string = %q, err = %v", s, d.Err())
	}
}

// TestFramePartsMatchesFrame pins the vectored writer to the simple
// one: a frame built from any split of a payload must be byte-for-byte
// the frame built from the whole payload, so receivers cannot tell how
// the sender's gather list happened to be shaped.
func TestFramePartsMatchesFrame(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	want := frameBytes(t, FrameChunk, payload)
	splits := [][]int{
		{},                  // no parts beyond the implicit whole
		{0},                 // leading empty part
		{len(payload)},      // trailing empty part
		{1, 2, 3, 5, 8, 13}, // many tiny parts
		{len(payload) / 2},  // even halves
	}
	for _, cuts := range splits {
		var parts [][]byte
		prev := 0
		for _, c := range cuts {
			parts = append(parts, payload[prev:c])
			prev = c
		}
		parts = append(parts, payload[prev:])
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.FrameParts(FrameChunk, parts...); err != nil {
			t.Fatalf("FrameParts(%v): %v", cuts, err)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		w.Release()
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("FrameParts(%v) produced different bytes than Frame", cuts)
		}
	}
}

// TestNextRawRelaysVerbatim reads a frame with NextRaw and re-emits
// hdr+body through Raw on a second writer: the relayed stream must be
// byte-identical to the original and decode to the same frame — the
// zero-copy relay invariant the shard router depends on (checksums
// cross the hop untouched).
func TestNextRawRelaysVerbatim(t *testing.T) {
	payload := bytes.Repeat([]byte("ring "), 1000)
	original := append(frameBytes(t, FrameRequest, payload),
		frameBytes(t, FrameChunk, []byte("tail"))...)

	r := NewReader(bytes.NewReader(original), 0)
	defer r.Release()
	var relayed bytes.Buffer
	w := NewWriter(&relayed)
	for i := 0; i < 2; i++ {
		typ, hdr, body, err := r.NextRaw()
		if err != nil {
			t.Fatalf("NextRaw %d: %v", i, err)
		}
		if want := []byte{FrameRequest, FrameChunk}[i]; typ != want {
			t.Fatalf("NextRaw %d type = %#x, want %#x", i, typ, want)
		}
		if len(hdr) != 12 || body[0] != typ {
			t.Fatalf("NextRaw %d: hdr %d bytes, body[0] = %#x", i, len(hdr), body[0])
		}
		if err := w.Raw(append(append([]byte(nil), hdr...), body...)); err != nil {
			t.Fatalf("Raw %d: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	w.Release()
	if !bytes.Equal(relayed.Bytes(), original) {
		t.Fatalf("relayed stream differs from original (%d vs %d bytes)", relayed.Len(), len(original))
	}

	// And the relayed copy still decodes cleanly.
	r2 := NewReader(bytes.NewReader(relayed.Bytes()), 0)
	defer r2.Release()
	typ, got, err := r2.Next()
	if err != nil || typ != FrameRequest || !bytes.Equal(got, payload) {
		t.Fatalf("relayed frame decode = (%#x, %d bytes, %v)", typ, len(got), err)
	}
	if typ, got, err = r2.Next(); err != nil || typ != FrameChunk || string(got) != "tail" {
		t.Fatalf("relayed chunk decode = (%#x, %q, %v)", typ, got, err)
	}
}

// TestNextRawOversizeKeepsHeader pins the relay-side oversize
// contract: NextRaw must classify an over-limit frame as
// ErrFrameTooLarge (the router replies, then closes) rather than
// reading it, exactly like Next.
func TestNextRawOversizeKeepsHeader(t *testing.T) {
	big := frameBytes(t, FrameRequest, bytes.Repeat([]byte{0xCC}, 4096))
	r := NewReader(bytes.NewReader(big), 128)
	defer r.Release()
	if _, _, _, err := r.NextRaw(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("NextRaw over limit = %v, want ErrFrameTooLarge", err)
	}
}
