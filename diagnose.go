package snorlax

import (
	"fmt"

	"snorlax/internal/core"
	"snorlax/internal/pattern"
)

// Diagnoser runs Lazy Diagnosis for one program.
type Diagnoser struct {
	prog *Program
	srv  *core.Server
}

// NewDiagnoser returns a Diagnoser with the paper's defaults (64 KB
// trace rings, up to 10 successful traces per failure).
func NewDiagnoser(p *Program) *Diagnoser {
	return &Diagnoser{prog: p, srv: core.NewServer(p.mod)}
}

// SetWorkers bounds the success-trace decode/observe pool used by
// Diagnose; 0 (the default) uses runtime.GOMAXPROCS(0), 1 forces the
// serial path. Any setting produces bit-identical reports.
func (d *Diagnoser) SetWorkers(n int) { d.srv.Workers = n }

// BugKind classifies a diagnosed root cause.
type BugKind int

// The diagnosable bug kinds (Figure 1 of the paper).
const (
	Deadlock BugKind = iota
	OrderViolation
	AtomicityViolation
)

func (k BugKind) String() string {
	switch k {
	case Deadlock:
		return "deadlock"
	case OrderViolation:
		return "order violation"
	case AtomicityViolation:
		return "atomicity violation"
	}
	return "unknown"
}

// Event is one program point participating in the diagnosed pattern.
type Event struct {
	// PC is the instruction's program counter.
	PC PC
	// Instr renders the instruction and its location.
	Instr string
}

// Report is a diagnosis result.
type Report struct {
	// Kind is the diagnosed bug class.
	Kind BugKind
	// Pattern names the access signature ("WR", "RWR", "DL2", …).
	Pattern string
	// Events lists the root cause's program points in pattern order.
	Events []Event
	// F1, Precision and Recall are the statistical confidence of the
	// diagnosis over the observed executions.
	F1, Precision, Recall float64
	// Unique reports whether the top pattern strictly beat all
	// others; when false, developers should review Alternatives.
	Unique bool
	// Alternatives lists runner-up pattern keys with their F1.
	Alternatives []string
	// ScopeReduction is how much trace-based scope restriction shrank
	// the analyzed instruction set.
	ScopeReduction float64
	// SuccessTraces counts the successful traces the verdict is based
	// on; DroppedSuccesses counts uploads skipped as undecodable
	// (degraded mode). A nonzero drop count with a healthy
	// SuccessTraces means corruption was absorbed, not ignored.
	SuccessTraces    int
	DroppedSuccesses int
	// AnalysisTime describes the server-side cost.
	AnalysisTime string

	prog *Program
	diag *core.Diagnosis
}

// Diagnose runs the full pipeline on one failing execution plus
// traces from successful executions of the same (or an identically
// laid out) program.
func (d *Diagnoser) Diagnose(failing *Execution, successes []*Execution) (*Report, error) {
	if failing == nil || !failing.Failed() {
		return nil, fmt.Errorf("snorlax: Diagnose needs a failing execution")
	}
	var okReports []*core.RunReport
	for _, s := range successes {
		if s != nil && !s.Failed() && s.Snapshot() != nil {
			okReports = append(okReports, s.report)
		}
	}
	diag, err := d.srv.Diagnose(failing.report, okReports)
	if err != nil {
		return nil, err
	}
	return newReport(d.prog, diag), nil
}

func newReport(prog *Program, diag *core.Diagnosis) *Report {
	r := &Report{Unique: diag.Unique, prog: prog, diag: diag}
	if best := diag.Best.Pattern; best != nil {
		switch best.Kind {
		case pattern.KindDeadlock:
			r.Kind = Deadlock
		case pattern.KindOrderViolation:
			r.Kind = OrderViolation
		case pattern.KindAtomicityViolation:
			r.Kind = AtomicityViolation
		}
		r.Pattern = best.Sub
		for _, pc := range best.PCs {
			if pc == NoPC {
				continue
			}
			r.Events = append(r.Events, Event{PC: pc, Instr: prog.InstrString(pc)})
		}
		r.F1 = diag.Best.F1
		r.Precision = diag.Best.Precision
		r.Recall = diag.Best.Recall
	}
	for _, s := range diag.Scores[min(1, len(diag.Scores)):] {
		if len(r.Alternatives) >= 5 {
			break
		}
		r.Alternatives = append(r.Alternatives, fmt.Sprintf("%s (F1=%.2f)", s.Pattern.Key(), s.F1))
	}
	r.SuccessTraces = diag.Stats.SuccessTraces
	r.DroppedSuccesses = diag.Stats.DroppedSuccesses
	if diag.Stats.ExecutedInstrs > 0 {
		r.ScopeReduction = float64(diag.Stats.TotalInstrs) / float64(diag.Stats.ExecutedInstrs)
	}
	r.AnalysisTime = diag.Stats.TotalTime.String()
	return r
}

// Format renders the report for humans.
func (r *Report) Format() string {
	return core.Format(r.prog.mod, r.diag)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
