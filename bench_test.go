// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports its headline quantity as a custom metric
// (µs gaps, overhead %, speedups, accuracy) in addition to wall time.
package snorlax_test

import (
	"runtime"
	"testing"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/experiments"
	"snorlax/internal/ir"
	"snorlax/internal/pattern"
	"snorlax/internal/pointsto"
	"snorlax/internal/pt"
	"snorlax/internal/racedet"
	"snorlax/internal/replay"
	"snorlax/internal/statdiag"
	"snorlax/internal/traceproc"
	"snorlax/internal/vm"
)

// --- Tables 1–3: the coarse interleaving hypothesis ---------------------

func benchHypothesis(b *testing.B, kind pattern.Kind) {
	b.ReportAllocs()
	var meanUS float64
	for i := 0; i < b.N; i++ {
		rows := experiments.HypothesisTable(kind, 2)
		var sum float64
		var n int
		for _, r := range rows {
			for _, m := range r.MeanUS {
				sum += m
				n++
			}
		}
		meanUS = sum / float64(n)
	}
	b.ReportMetric(meanUS, "ΔT-µs")
}

func BenchmarkTable1Deadlocks(b *testing.B) {
	benchHypothesis(b, pattern.KindDeadlock)
}

func BenchmarkTable2OrderViolations(b *testing.B) {
	benchHypothesis(b, pattern.KindOrderViolation)
}

func BenchmarkTable3AtomicityViolations(b *testing.B) {
	benchHypothesis(b, pattern.KindAtomicityViolation)
}

// --- §6.1: accuracy ------------------------------------------------------

func BenchmarkAccuracyAllBugs(b *testing.B) {
	var correct, total int
	for i := 0; i < b.N; i++ {
		correct, total = 0, 0
		for _, row := range experiments.Accuracy(corpus.EvalSet()) {
			total++
			if row.Correct {
				correct++
			}
		}
	}
	b.ReportMetric(100*float64(correct)/float64(total), "accuracy-%")
}

// --- Figure 7: stage contributions --------------------------------------

func BenchmarkFig7StageContribution(b *testing.B) {
	var geoScope, geoRank float64
	for i := 0; i < b.N; i++ {
		_, geoScope, geoRank = experiments.Fig7(corpus.EvalSet())
	}
	b.ReportMetric(geoScope, "scope-reduction-x")
	b.ReportMetric(geoRank, "rank-reduction-x")
}

// --- Figure 8: tracing overhead ------------------------------------------

func BenchmarkFig8TracingOverhead(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		_, avg = experiments.Fig8(2, 10, 1)
	}
	b.ReportMetric(avg, "overhead-%")
}

// --- Table 4: analysis speedup -------------------------------------------

func BenchmarkTable4AnalysisSpeedup(b *testing.B) {
	var geo float64
	for i := 0; i < b.N; i++ {
		_, geo = experiments.Table4(1)
	}
	b.ReportMetric(geo, "speedup-x")
}

// --- Figure 9: scalability vs Gist ---------------------------------------

func BenchmarkFig9Scalability(b *testing.B) {
	var snorlax32, gist32 float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig9([]int{2, 32}, 5)
		snorlax32 = rows[len(rows)-1].SnorlaxPct
		gist32 = rows[len(rows)-1].GistPct
	}
	b.ReportMetric(snorlax32, "snorlax-32t-%")
	b.ReportMetric(gist32, "gist-32t-%")
}

// --- §6.3: diagnosis latency ---------------------------------------------

func BenchmarkLatencyComparison(b *testing.B) {
	var chromium float64
	for i := 0; i < b.N; i++ {
		r := experiments.Latency()
		for _, row := range r.Model {
			if row.OpenBugs == 684 {
				chromium = row.SpeedupOverGist
			}
		}
	}
	b.ReportMetric(chromium, "chromium-speedup-x")
}

// --- §5: trace statistics --------------------------------------------------

func BenchmarkTraceStats(b *testing.B) {
	var events int64
	for i := 0; i < b.N; i++ {
		events = experiments.TraceStats("mysql").ControlEventsPerThread
	}
	b.ReportMetric(float64(events), "events/thread")
}

// --- Pipeline micro-benchmarks -------------------------------------------

// BenchmarkDiagnoseSingleFailure measures the end-to-end server-side
// analysis cost for one failing trace (the paper: ~2.5s on 650 KLOC
// MySQL; ours is a far smaller module).
func BenchmarkDiagnoseSingleFailure(b *testing.B) {
	inst := corpus.ByID("mysql-3").Build(corpus.Variant{Failing: true})
	client := core.NewClient(inst.Mod)
	rep := client.Run(1, ir.NoPC)
	if !rep.Failed() {
		b.Fatal("expected failure")
	}
	srv := core.NewServer(inst.Mod)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Diagnose(rep, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceDecode measures reconstructing the dynamic
// instruction trace from captured rings.
func BenchmarkTraceDecode(b *testing.B) {
	mod := corpus.Perf("mysql", 2, 20)
	enc := pt.NewEncoder(pt.Config{})
	res := vm.Run(mod, vm.Config{Seed: 1, Sink: enc})
	if res.Failed() {
		b.Fatal(res.Failure)
	}
	snap := enc.Snapshot()
	b.ResetTimer()
	var decoded int
	for i := 0; i < b.N; i++ {
		traces, err := pt.DecodeSnapshot(mod, snap, pt.Config{}, nil)
		if err != nil {
			b.Fatal(err)
		}
		decoded = 0
		for _, tt := range traces {
			decoded += len(tt.Instrs)
		}
	}
	b.ReportMetric(float64(decoded), "instrs")
}

// BenchmarkVMExecution measures raw interpreter throughput.
func BenchmarkVMExecution(b *testing.B) {
	mod := corpus.Perf("pbzip2", 2, 10)
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		res := vm.Run(mod, vm.Config{Seed: int64(i)})
		steps = res.Steps
	}
	b.ReportMetric(float64(steps), "steps/run")
}

// --- Parallel diagnosis pipeline -------------------------------------------

// manySuccessReports reproduces httpd-4 once and gathers 12 successful
// triggered traces — the 10+-trace diagnosis the parallel pipeline is
// built for.
func manySuccessReports(b testing.TB) (*corpus.Instance, *core.RunReport, []*core.RunReport) {
	b.Helper()
	bug := corpus.ByID("httpd-4")
	failInst := bug.Build(corpus.Variant{Failing: true})
	okInst := bug.Build(corpus.Variant{Failing: false})
	rep := core.NewClient(failInst.Mod).Run(1, ir.NoPC)
	if !rep.Failed() {
		b.Fatal("expected failure")
	}
	okClient := core.NewClient(okInst.Mod)
	var oks []*core.RunReport
	for seed := int64(1); len(oks) < 12 && seed < 100; seed++ {
		r := okClient.Run(seed, rep.Failure.PC)
		if !r.Failed() && r.Triggered {
			oks = append(oks, r)
		}
	}
	if len(oks) < 12 {
		b.Fatalf("gathered %d/12 successful traces", len(oks))
	}
	return failInst, rep, oks
}

// BenchmarkDiagnoseManySuccesses measures a 12-success-trace diagnosis
// across the pipeline's operating points: serial, GOMAXPROCS-wide
// fan-out (cache off, isolating the decode+observe fan-out), and the
// cached steady state the network server settles into.
func BenchmarkDiagnoseManySuccesses(b *testing.B) {
	failInst, rep, oks := manySuccessReports(b)
	run := func(workers int, cache bool) func(*testing.B) {
		return func(b *testing.B) {
			srv := core.NewServer(failInst.Mod)
			srv.Workers = workers
			srv.MaxSuccessTraces = len(oks)
			srv.DisableCache = !cache
			if cache {
				if _, err := srv.Diagnose(rep, oks); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := srv.Diagnose(rep, oks); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("serial", run(1, false))
	b.Run("parallel", run(0, false))
	b.Run("parallel-cached", run(0, true))
}

// BenchmarkParallelPipelineSpeedup reports the serial/parallel
// wall-clock ratio for the same 12-trace diagnosis — the acceptance
// metric for the fan-out (≥2x with 10+ traces on ≥4 cores; on fewer
// cores the ratio degrades toward 1x by construction).
func BenchmarkParallelPipelineSpeedup(b *testing.B) {
	failInst, rep, oks := manySuccessReports(b)
	measure := func(workers int) time.Duration {
		srv := core.NewServer(failInst.Mod)
		srv.Workers = workers
		srv.MaxSuccessTraces = len(oks)
		srv.DisableCache = true
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if _, err := srv.Diagnose(rep, oks); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start)
	}
	b.ResetTimer()
	serial := measure(1)
	parallel := measure(0)
	b.ReportMetric(float64(serial)/float64(parallel), "speedup-x")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
}

// BenchmarkObservabilityOverhead prices the metrics layer on the same
// 12-trace diagnosis as BenchmarkDiagnoseManySuccesses: one server
// with per-stage histograms recording, one with them disabled, and
// the relative cost as a metric. The observability acceptance bar is
// <5% overhead.
func BenchmarkObservabilityOverhead(b *testing.B) {
	failInst, rep, oks := manySuccessReports(b)
	measure := func(disabled bool) time.Duration {
		srv := core.NewServer(failInst.Mod)
		srv.MaxSuccessTraces = len(oks)
		srv.DisableObs = disabled
		if _, err := srv.Diagnose(rep, oks); err != nil { // warm the cache
			b.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if _, err := srv.Diagnose(rep, oks); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start)
	}
	b.ResetTimer()
	off := measure(true)
	on := measure(false)
	b.ReportMetric(100*(float64(on)-float64(off))/float64(off), "overhead-%")
}

// BenchmarkAnalysisCacheSteadyState isolates the points-to cache: the
// same failure diagnosed repeatedly on one server, the network
// server's steady state, where step 4 collapses to a map lookup.
func BenchmarkAnalysisCacheSteadyState(b *testing.B) {
	inst := corpus.ByID("mysql-3").Build(corpus.Variant{Failing: true})
	rep := core.NewClient(inst.Mod).Run(1, ir.NoPC)
	if !rep.Failed() {
		b.Fatal("expected failure")
	}
	for _, cached := range []bool{false, true} {
		name := "cache-off"
		if cached {
			name = "cache-on"
		}
		b.Run(name, func(b *testing.B) {
			srv := core.NewServer(inst.Mod)
			srv.DisableCache = !cached
			if _, err := srv.Diagnose(rep, nil); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var ptNS float64
			for i := 0; i < b.N; i++ {
				d, err := srv.Diagnose(rep, nil)
				if err != nil {
					b.Fatal(err)
				}
				ptNS = float64(d.Stats.PointsToTime)
			}
			b.ReportMetric(ptNS, "pts-ns")
		})
	}
}

// --- Ablations (design choices called out in DESIGN.md) -------------------

// BenchmarkAblationPointsToInclusion vs ...Unification: the accuracy/
// speed trade the paper discusses in §4.2.
func BenchmarkAblationPointsToInclusion(b *testing.B) {
	mod := corpus.ByID("mysql-3").Build(corpus.Variant{Failing: true}).Mod
	var sets float64
	for i := 0; i < b.N; i++ {
		a := pointsto.NewAndersen(mod, nil)
		sets = avgPtsSize(mod, a)
	}
	b.ReportMetric(sets, "avg-pts-size")
}

func BenchmarkAblationPointsToUnification(b *testing.B) {
	mod := corpus.ByID("mysql-3").Build(corpus.Variant{Failing: true}).Mod
	var sets float64
	for i := 0; i < b.N; i++ {
		s := pointsto.NewSteensgaard(mod, nil)
		sets = avgPtsSize(mod, s)
	}
	b.ReportMetric(sets, "avg-pts-size")
}

type ptsAnalysis interface {
	PointsTo(v ir.Value) pointsto.ObjSet
}

func avgPtsSize(mod *ir.Module, a ptsAnalysis) float64 {
	var sum, n float64
	mod.Instrs(func(in ir.Instr) {
		if p := ir.AccessedPointer(in); p != nil {
			sum += float64(len(a.PointsTo(p)))
			n++
		}
	})
	if n == 0 {
		return 0
	}
	return sum / n
}

// BenchmarkAblationRanking compares candidate counts with and without
// type-based ranking (§4.3: ranking cuts diagnosis latency 4.6x by
// prioritizing exact-type candidates).
func BenchmarkAblationRanking(b *testing.B) {
	inst := corpus.ByID("sqlite-3").Build(corpus.Variant{Failing: true})
	client := core.NewClient(inst.Mod)
	rep := client.Run(1, ir.NoPC)
	if !rep.Failed() {
		b.Fatal("expected failure")
	}
	var rank1, all int
	for i := 0; i < b.N; i++ {
		srv := core.NewServer(inst.Mod)
		d, err := srv.Diagnose(rep, nil)
		if err != nil {
			b.Fatal(err)
		}
		rank1, all = d.Stats.Rank1Candidates, d.Stats.Candidates
	}
	b.ReportMetric(float64(rank1), "rank1")
	b.ReportMetric(float64(all), "candidates")
}

// BenchmarkAblationRingBuffer sweeps the trace ring size: smaller
// rings keep less history (§7's limited-trace discussion).
func BenchmarkAblationRingBuffer(b *testing.B) {
	mod := corpus.Perf("httpd", 2, 20)
	for _, size := range []int{4 << 10, 16 << 10, 64 << 10, 256 << 10} {
		b.Run(byteSize(size), func(b *testing.B) {
			var captured float64
			for i := 0; i < b.N; i++ {
				cfg := pt.Config{BufBytes: size}
				enc := pt.NewEncoder(cfg)
				if res := vm.Run(mod, vm.Config{Seed: 1, Sink: enc}); res.Failed() {
					b.Fatal(res.Failure)
				}
				snap := enc.Snapshot()
				traces, err := pt.DecodeSnapshot(mod, snap, cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				captured = 0
				for _, tt := range traces {
					captured += float64(len(tt.Instrs))
				}
			}
			b.ReportMetric(captured, "instrs-captured")
		})
	}
}

func byteSize(n int) string {
	switch {
	case n >= 1<<20:
		return "1MB"
	case n >= 1<<10:
		return itoa(n>>10) + "KB"
	}
	return itoa(n) + "B"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationTimingFrequency compares decoded timestamp
// uncertainty with CYC packets on (the paper's max-frequency
// configuration) and off (MTC only).
func BenchmarkAblationTimingFrequency(b *testing.B) {
	mod := corpus.Perf("memcached", 2, 10)
	for _, disableCYC := range []bool{false, true} {
		name := "cyc-on"
		if disableCYC {
			name = "mtc-only"
		}
		b.Run(name, func(b *testing.B) {
			var meanUncert float64
			for i := 0; i < b.N; i++ {
				cfg := pt.Config{DisableCYC: disableCYC}
				enc := pt.NewEncoder(cfg)
				if res := vm.Run(mod, vm.Config{Seed: 1, Sink: enc}); res.Failed() {
					b.Fatal(res.Failure)
				}
				traces, err := pt.DecodeSnapshot(mod, enc.Snapshot(), cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				var sum, n float64
				for _, tt := range traces {
					for _, di := range tt.Instrs {
						sum += float64(di.Uncert)
						n++
					}
				}
				meanUncert = sum / n
			}
			b.ReportMetric(meanUncert, "uncert-ns")
		})
	}
}

// BenchmarkAblationSuccessTraces sweeps how many successful traces
// feed statistical diagnosis (the paper's empirically chosen 10x).
func BenchmarkAblationSuccessTraces(b *testing.B) {
	bug := corpus.ByID("httpd-4")
	failInst := bug.Build(corpus.Variant{Failing: true})
	okInst := bug.Build(corpus.Variant{Failing: false})
	failClient := core.NewClient(failInst.Mod)
	rep := failClient.Run(1, ir.NoPC)
	if !rep.Failed() {
		b.Fatal("expected failure")
	}
	okClient := core.NewClient(okInst.Mod)
	var okReports []*core.RunReport
	for seed := int64(1); len(okReports) < 10 && seed < 50; seed++ {
		r := okClient.Run(seed, rep.Failure.PC)
		if !r.Failed() && r.Triggered {
			okReports = append(okReports, r)
		}
	}
	for _, n := range []int{0, 1, 5, 10} {
		b.Run("successes-"+itoa(n), func(b *testing.B) {
			var ambiguous float64
			for i := 0; i < b.N; i++ {
				srv := core.NewServer(failInst.Mod)
				d, err := srv.Diagnose(rep, okReports[:n])
				if err != nil {
					b.Fatal(err)
				}
				ambiguous = topTies(d.Scores)
			}
			b.ReportMetric(ambiguous, "top-F1-ties")
		})
	}
}

// topTies counts the patterns sharing the best F1 — the ambiguity
// that traces from successful executions exist to eliminate: with no
// successes every computed pattern predicts the one failing run
// perfectly.
func topTies(scores []statdiag.Score) float64 {
	if len(scores) == 0 {
		return 0
	}
	n := 0
	for _, s := range scores {
		if s.F1 == scores[0].F1 {
			n++
		}
	}
	return float64(n)
}

// BenchmarkHybridVsWholeProgramAnalysis isolates the scope-restricted
// points-to analysis against the whole-program baseline on the
// largest module.
func BenchmarkHybridVsWholeProgramAnalysis(b *testing.B) {
	inst := corpus.ByID("mysql-1").Build(corpus.Variant{Failing: true})
	client := core.NewClient(inst.Mod)
	rep := client.Run(1, ir.NoPC)
	if !rep.Failed() {
		b.Fatal("expected failure")
	}
	traces, err := pt.DecodeSnapshot(inst.Mod, rep.Snapshot, pt.Config{},
		map[int]ir.PC{rep.Failure.Tid: rep.Failure.PC})
	if err != nil {
		b.Fatal(err)
	}
	scope, _ := traceproc.Process(traces)
	b.Run("hybrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pointsto.NewAndersen(inst.Mod, scope)
		}
	})
	b.Run("whole-program", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pointsto.NewAndersen(inst.Mod, nil)
		}
	})
}

// --- Extension subsystems --------------------------------------------------

// BenchmarkRaceDetectionOverhead measures the lockset detector's
// virtual-time cost on a throughput workload.
func BenchmarkRaceDetectionOverhead(b *testing.B) {
	mod := corpus.Perf("memcached", 2, 10)
	base := vm.Run(mod, vm.Config{Seed: 1})
	if base.Failed() {
		b.Fatal(base.Failure)
	}
	var races float64
	for i := 0; i < b.N; i++ {
		found, res := racedet.Detect(mod, vm.Config{Seed: 1})
		if res.Failed() {
			b.Fatal(res.Failure)
		}
		races = float64(len(found))
	}
	b.ReportMetric(races, "races")
}

// BenchmarkRecordReplay measures order-only recording plus a full
// replay of the same execution.
func BenchmarkRecordReplay(b *testing.B) {
	mod := corpus.Perf("aget", 2, 8)
	var logged float64
	for i := 0; i < b.N; i++ {
		res, log := replay.Record(mod, vm.Config{Seed: 2}, replay.SharedPCs(mod))
		if res.Failed() {
			b.Fatal(res.Failure)
		}
		if _, err := replay.Replay(mod, vm.Config{Seed: int64(i) + 50}, log); err != nil {
			b.Fatal(err)
		}
		logged = float64(len(log.Events))
	}
	b.ReportMetric(logged, "accesses-logged")
}
