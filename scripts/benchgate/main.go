// Command benchgate compares two `go test -bench` result files and
// fails (exit 1) when a benchmark regressed: its median ns/op grew by
// more than -threshold AND the shift is statistically significant at
// -alpha under an exact two-sided Mann–Whitney U test — the same test
// benchstat uses, reimplemented here so the CI gate needs no module
// dependency and has a stable output format.
//
// Absolute nanoseconds differ across CI runner generations, so the
// gate normalizes: with -norm NAME, every sample in a file is divided
// by that file's median of NAME before comparison. Machine speed then
// cancels and only relative regressions (e.g. the bytecode engine
// slowing down relative to the tree-walker) trip the gate.
//
// -ratio A,B,MIN additionally requires median(A)/median(B) >= MIN in
// the new file — this is how CI enforces the bytecode engine's >=3x
// speedup over the tree-walker and the binary wire format's >=2x
// upload throughput over gob, independent of hardware. The flag
// repeats: each occurrence adds one floor.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var ratios ratioFlags
	var (
		oldPath   = fs.String("old", "", "baseline benchmark results file")
		newPath   = fs.String("new", "", "candidate benchmark results file")
		norm      = fs.String("norm", "", "benchmark name used to normalize each file (optional)")
		threshold = fs.Float64("threshold", 0.10, "maximum tolerated median regression (0.10 = +10%)")
		alpha     = fs.Float64("alpha", 0.05, "significance level for the Mann-Whitney test")
	)
	fs.Var(&ratios, "ratio", "A,B,MIN: require median(A)/median(B) >= MIN in -new (repeatable)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(stderr, "benchgate: -old and -new are required")
		return 2
	}

	oldS, err := parseBench(*oldPath)
	if err == nil {
		var newS map[string][]float64
		newS, err = parseBench(*newPath)
		if err == nil && *norm != "" {
			err = normalize(oldS, *norm, *oldPath)
			if err == nil {
				err = normalize(newS, *norm, *newPath)
			}
		}
		if err == nil {
			return gate(oldS, newS, *newPath, *threshold, *alpha, ratios, stdout, stderr)
		}
	}
	fmt.Fprintln(stderr, "benchgate:", err)
	return 2
}

// ratioFlags collects every -ratio occurrence.
type ratioFlags []string

func (r *ratioFlags) String() string     { return strings.Join(*r, " ") }
func (r *ratioFlags) Set(v string) error { *r = append(*r, v); return nil }

func gate(oldS, newS map[string][]float64, newPath string, threshold, alpha float64, ratios []string, stdout, stderr io.Writer) int {
	failed := false
	names := commonNames(oldS, newS)
	if len(names) == 0 {
		fmt.Fprintln(stdout, "benchgate: no common benchmarks; nothing to gate")
	}
	for _, name := range names {
		o, n := oldS[name], newS[name]
		om, nm := median(o), median(n)
		delta := (nm - om) / om
		p := mannWhitneyP(o, n)
		verdict := "ok"
		if delta > threshold && p < alpha {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Fprintf(stdout, "%-55s old=%.4g new=%.4g delta=%+.1f%% p=%.3f n=%d+%d %s\n",
			name, om, nm, 100*delta, p, len(o), len(n), verdict)
	}

	for _, ratio := range ratios {
		parts := strings.Split(ratio, ",")
		if len(parts) != 3 {
			fmt.Fprintln(stderr, "benchgate: -ratio wants A,B,MIN")
			return 2
		}
		min, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			fmt.Fprintln(stderr, "benchgate:", err)
			return 2
		}
		a, okA := newS[parts[0]]
		b, okB := newS[parts[1]]
		switch {
		case !okA || !okB:
			fmt.Fprintf(stderr, "benchgate: ratio benchmarks %s missing from %s\n", ratio, newPath)
			failed = true
		default:
			got := median(a) / median(b)
			verdict := "ok"
			if got < min {
				verdict = "BELOW FLOOR"
				failed = true
			}
			fmt.Fprintf(stdout, "speedup %s / %s = %.2fx (floor %.2fx) %s\n",
				parts[0], parts[1], got, min, verdict)
		}
	}

	if failed {
		return 1
	}
	return 0
}

// parseBench extracts ns/op samples per benchmark name (the trailing
// -GOMAXPROCS suffix is stripped so files from different machines
// align).
func parseBench(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string][]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad ns/op %q", path, fields[i])
				}
				out[name] = append(out[name], v)
				break
			}
		}
	}
	return out, sc.Err()
}

func normalize(s map[string][]float64, name, path string) error {
	ref, ok := s[name]
	if !ok {
		return fmt.Errorf("%s: normalization benchmark %q not present", path, name)
	}
	m := median(ref)
	for k, vs := range s {
		out := make([]float64, len(vs))
		for i, v := range vs {
			out[i] = v / m
		}
		s[k] = out
	}
	return nil
}

func commonNames(a, b map[string][]float64) []string {
	var names []string
	for k := range a {
		if _, ok := b[k]; ok {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	return names
}

func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// mannWhitneyP computes the exact two-sided p-value of the
// Mann–Whitney U test by enumerating every assignment of the pooled
// midranks to the first sample (exact even with ties). For pools
// larger than 22 samples it falls back to the normal approximation
// with tie correction.
func mannWhitneyP(x, y []float64) float64 {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		return 1
	}
	ranks, tieAdj := midranks(x, y)
	var r1 float64
	for i := 0; i < n; i++ {
		r1 += ranks[i]
	}
	u := r1 - float64(n*(n+1))/2
	if n+m > 22 {
		return normalApproxP(u, n, m, tieAdj)
	}
	// Exact: distribution of R1 over all C(n+m, n) subsets.
	total, extreme := 0, 0
	mean := float64(n*(n+m+1)) / 2
	obs := math.Abs(r1 - mean)
	const eps = 1e-9
	var walk func(idx, picked int, sum float64)
	walk = func(idx, picked int, sum float64) {
		if picked == n {
			total++
			if math.Abs(sum-mean) >= obs-eps {
				extreme++
			}
			return
		}
		if len(ranks)-idx < n-picked {
			return
		}
		walk(idx+1, picked+1, sum+ranks[idx])
		walk(idx+1, picked, sum)
	}
	walk(0, 0, 0)
	return float64(extreme) / float64(total)
}

// midranks pools x and y and returns the midrank of every pooled
// sample (x's first), plus the tie adjustment term sum(t^3 - t).
func midranks(x, y []float64) ([]float64, float64) {
	type item struct {
		v   float64
		idx int
	}
	all := make([]item, 0, len(x)+len(y))
	for i, v := range x {
		all = append(all, item{v, i})
	}
	for i, v := range y {
		all = append(all, item{v, len(x) + i})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	ranks := make([]float64, len(all))
	tieAdj := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[all[k].idx] = mid
		}
		t := float64(j - i)
		tieAdj += t*t*t - t
		i = j
	}
	return ranks, tieAdj
}

func normalApproxP(u float64, n, m int, tieAdj float64) float64 {
	nf, mf := float64(n), float64(m)
	mean := nf * mf / 2
	nTot := nf + mf
	variance := nf * mf / 12 * (nTot + 1 - tieAdj/(nTot*(nTot-1)))
	if variance <= 0 {
		return 1
	}
	z := math.Abs(u-mean) / math.Sqrt(variance)
	// Two-sided tail of the standard normal.
	return math.Erfc(z / math.Sqrt2)
}
