package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	content := `goos: linux
goarch: amd64
pkg: snorlax/internal/vm
BenchmarkVMExecute/loop/treewalk-8   	     324	   4303184 ns/op	        20.45 Minstr/s	  719543 B/op	   88051 allocs/op
BenchmarkVMExecute/loop/treewalk-8   	     330	   4200000 ns/op	        21.00 Minstr/s	  719543 B/op	   88051 allocs/op
BenchmarkVMExecute/loop/bytecode-8   	    1560	    896815 ns/op	        98.15 Minstr/s	   15328 B/op	      28 allocs/op
PASS
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	tw := got["BenchmarkVMExecute/loop/treewalk"]
	if len(tw) != 2 || tw[0] != 4303184 || tw[1] != 4200000 {
		t.Errorf("treewalk samples = %v", tw)
	}
	bc := got["BenchmarkVMExecute/loop/bytecode"]
	if len(bc) != 1 || bc[0] != 896815 {
		t.Errorf("bytecode samples = %v", bc)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %v, want 2", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("median even = %v, want 2.5", m)
	}
}

func TestMannWhitneyP(t *testing.T) {
	// Identical samples: no evidence of a shift.
	same := []float64{5, 5, 5, 5, 5, 5}
	if p := mannWhitneyP(same, same); p < 0.99 {
		t.Errorf("identical samples: p = %v, want ~1", p)
	}
	// Fully separated samples of size 6: the most extreme of the
	// C(12,6)=924 assignments on each side, p = 2/924.
	lo := []float64{1, 2, 3, 4, 5, 6}
	hi := []float64{10, 11, 12, 13, 14, 15}
	p := mannWhitneyP(lo, hi)
	want := 2.0 / 924.0
	if p < want-1e-9 || p > want+1e-9 {
		t.Errorf("separated samples: p = %v, want %v", p, want)
	}
	// Overlapping noisy samples must not be significant.
	a := []float64{100, 103, 98, 101, 99, 102}
	b := []float64{101, 99, 102, 100, 103, 98}
	if p := mannWhitneyP(a, b); p < 0.5 {
		t.Errorf("overlapping samples: p = %v, want > 0.5", p)
	}
}

// benchFile writes a bench results file with the given per-benchmark
// ns/op samples and returns its path.
func benchFile(t *testing.T, name string, samples map[string][]float64) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("goos: linux\npkg: snorlax/internal/vm\n")
	for bench, vs := range samples {
		for _, v := range vs {
			fmt.Fprintf(&sb, "%s-8   \t     100\t   %.0f ns/op\t  128 B/op\t  2 allocs/op\n", bench, v)
		}
	}
	sb.WriteString("PASS\n")
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	base := map[string][]float64{
		"BenchmarkVMExecute/loop/treewalk": {4000, 4100, 3900, 4050, 3950, 4000},
		"BenchmarkVMExecute/loop/bytecode": {1000, 1020, 980, 1010, 990, 1000},
	}
	regressed := map[string][]float64{
		"BenchmarkVMExecute/loop/treewalk": {4000, 4100, 3900, 4050, 3950, 4000},
		"BenchmarkVMExecute/loop/bytecode": {1500, 1520, 1480, 1510, 1490, 1500},
	}
	old := benchFile(t, "old.txt", base)
	ratio := "BenchmarkVMExecute/loop/treewalk,BenchmarkVMExecute/loop/bytecode,3.0"
	gateArgs := func(new string) []string {
		return []string{"-old", old, "-new", new,
			"-norm", "BenchmarkVMExecute/loop/treewalk",
			"-threshold", "0.10", "-alpha", "0.05", "-ratio", ratio}
	}

	var out, errOut strings.Builder
	if code := run(gateArgs(benchFile(t, "same.txt", base)), &out, &errOut); code != 0 {
		t.Errorf("self-compare: exit %d, want 0\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "= 4.00x (floor 3.00x) ok") {
		t.Errorf("self-compare output missing speedup line:\n%s", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run(gateArgs(benchFile(t, "bad.txt", regressed)), &out, &errOut); code != 1 {
		t.Errorf("regressed compare: exit %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"REGRESSION", "BELOW FLOOR"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("regressed output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRepeatedRatios(t *testing.T) {
	samples := map[string][]float64{
		"BenchmarkVMExecute/loop/treewalk": {4000, 4100, 3900, 4050, 3950, 4000},
		"BenchmarkVMExecute/loop/bytecode": {1000, 1020, 980, 1010, 990, 1000},
		"BenchmarkWireUpload/gob":          {400, 410, 390, 405, 395, 400},
		"BenchmarkWireUpload/binary":       {180, 185, 175, 182, 178, 180},
	}
	old := benchFile(t, "old.txt", samples)
	new := benchFile(t, "new.txt", samples)
	args := []string{"-old", old, "-new", new,
		"-norm", "BenchmarkVMExecute/loop/treewalk",
		"-ratio", "BenchmarkVMExecute/loop/treewalk,BenchmarkVMExecute/loop/bytecode,3.0",
		"-ratio", "BenchmarkWireUpload/gob,BenchmarkWireUpload/binary,2.0"}

	var out, errOut strings.Builder
	if code := run(args, &out, &errOut); code != 0 {
		t.Errorf("two passing floors: exit %d, want 0\n%s%s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"= 4.00x (floor 3.00x) ok", "= 2.22x (floor 2.00x) ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	// Raising the second floor past the measured ratio must fail the
	// gate even though the first floor still passes.
	out.Reset()
	errOut.Reset()
	args[len(args)-1] = "BenchmarkWireUpload/gob,BenchmarkWireUpload/binary,5.0"
	if code := run(args, &out, &errOut); code != 1 {
		t.Errorf("failing second floor: exit %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "BELOW FLOOR") {
		t.Errorf("output missing BELOW FLOOR:\n%s", out.String())
	}

	// A floor naming an absent benchmark fails rather than silently
	// passing.
	out.Reset()
	errOut.Reset()
	args[len(args)-1] = "BenchmarkNope/a,BenchmarkNope/b,1.0"
	if code := run(args, &out, &errOut); code != 1 {
		t.Errorf("missing ratio benchmarks: exit %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
}

func TestRunBadUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("missing flags: exit %d, want 2", code)
	}
	if code := run([]string{"-old", "nope.txt", "-new", "nope.txt"}, &out, &errOut); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}

func TestNormalizeCancelsMachineSpeed(t *testing.T) {
	// Same relative shape measured on a machine 2x slower: after
	// normalization the samples must be identical.
	fast := map[string][]float64{"ref": {100, 100}, "x": {300, 310}}
	slow := map[string][]float64{"ref": {200, 200}, "x": {600, 620}}
	if err := normalize(fast, "ref", "fast"); err != nil {
		t.Fatal(err)
	}
	if err := normalize(slow, "ref", "slow"); err != nil {
		t.Fatal(err)
	}
	for i := range fast["x"] {
		if fast["x"][i] != slow["x"][i] {
			t.Errorf("normalized x[%d]: fast %v, slow %v", i, fast["x"][i], slow["x"][i])
		}
	}
}
