#!/usr/bin/env bash
# bench.sh — record or compare the VM execution benchmarks with a
# fixed, repeatable discipline (one pattern, one package, -count=6,
# -benchmem), so any two result files are comparable by benchstat or
# scripts/benchgate.
#
# Usage:
#   scripts/bench.sh record [out.txt]           write fresh numbers (default bench-new.txt)
#   scripts/bench.sh compare <old.txt> [new.txt] record new.txt if missing, then compare
#
# Knobs (env): BENCH_COUNT (default 6), BENCH_PATTERN (default
# ^BenchmarkVMExecute$), BENCH_PKG (default ./internal/vm).
#
# The perf CI lane records bench-head.txt, renders a benchstat report
# artifact against the checked-in .github/bench-baseline.txt, and
# gates with scripts/benchgate (>10% normalized regression at p<0.05
# fails the lane, as does losing the bytecode engine's >=3x speedup).
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-6}"
PATTERN="${BENCH_PATTERN:-^BenchmarkVMExecute$}"
PKG="${BENCH_PKG:-./internal/vm}"

record() {
  local out="${1:-bench-new.txt}"
  echo "recording: go test -run '^\$' -bench '$PATTERN' -count $COUNT -benchmem $PKG" >&2
  go test -run '^$' -bench "$PATTERN" -count "$COUNT" -benchmem "$PKG" | tee "$out"
}

compare() {
  local old="${1:?usage: bench.sh compare <old.txt> [new.txt]}"
  local new="${2:-bench-new.txt}"
  [ -f "$new" ] || record "$new" >/dev/null
  if command -v benchstat >/dev/null 2>&1; then
    benchstat "$old" "$new"
  else
    echo "benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest);" >&2
    echo "falling back to scripts/benchgate's table." >&2
  fi
  go run ./scripts/benchgate -old "$old" -new "$new" \
    -norm 'BenchmarkVMExecute/loop/treewalk' -threshold 0.10 -alpha 0.05 \
    -ratio 'BenchmarkVMExecute/loop/treewalk,BenchmarkVMExecute/loop/bytecode,3.0'
}

case "${1:-}" in
  record)  shift; record "$@" ;;
  compare) shift; compare "$@" ;;
  *) echo "usage: $0 {record [out.txt] | compare <old.txt> [new.txt]}" >&2; exit 2 ;;
esac
