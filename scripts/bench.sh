#!/usr/bin/env bash
# bench.sh — record or compare the VM execution benchmarks with a
# fixed, repeatable discipline (one pattern, one package, -count=6,
# -benchmem), so any two result files are comparable by benchstat or
# scripts/benchgate.
#
# Usage:
#   scripts/bench.sh record [out.txt]           write fresh numbers (default bench-new.txt)
#   scripts/bench.sh compare <old.txt> [new.txt] record new.txt if missing, then compare
#   scripts/bench.sh fleet [out.json]           record fleet-tier load numbers (default BENCH_fleet.json)
#
# Knobs (env): BENCH_COUNT (default 6), BENCH_PATTERN (default
# ^BenchmarkVMExecute$), BENCH_PKG (default ./internal/vm),
# WIRE_PATTERN (default ^BenchmarkWireUpload$; empty skips the wire
# record), WIRE_PKG (default ./internal/shard);
# for fleet: FLEET_AGENTS (default 1000), FLEET_PORT_BASE (default 7100).
#
# The perf CI lane records bench-head.txt, renders a benchstat report
# artifact against the checked-in .github/bench-baseline.txt, and
# gates with scripts/benchgate (>10% normalized regression at p<0.05
# fails the lane, as does losing the bytecode engine's >=3x speedup
# or the binary wire format's >=2x batch-upload throughput over gob).
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-6}"
PATTERN="${BENCH_PATTERN:-^BenchmarkVMExecute$}"
PKG="${BENCH_PKG:-./internal/vm}"
WIRE_PATTERN="${WIRE_PATTERN-^BenchmarkWireUpload$}"
WIRE_PKG="${WIRE_PKG:-./internal/shard}"

record() {
  local out="${1:-bench-new.txt}"
  echo "recording: go test -run '^\$' -bench '$PATTERN' -count $COUNT -benchmem $PKG" >&2
  go test -run '^$' -bench "$PATTERN" -count "$COUNT" -benchmem "$PKG" | tee "$out"
  if [ -n "$WIRE_PATTERN" ]; then
    echo "recording: go test -run '^\$' -bench '$WIRE_PATTERN' -count $COUNT -benchmem $WIRE_PKG" >&2
    go test -run '^$' -bench "$WIRE_PATTERN" -count "$COUNT" -benchmem "$WIRE_PKG" | tee -a "$out"
  fi
}

compare() {
  local old="${1:?usage: bench.sh compare <old.txt> [new.txt]}"
  local new="${2:-bench-new.txt}"
  [ -f "$new" ] || record "$new" >/dev/null
  if command -v benchstat >/dev/null 2>&1; then
    benchstat "$old" "$new"
  else
    echo "benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest);" >&2
    echo "falling back to scripts/benchgate's table." >&2
  fi
  go run ./scripts/benchgate -old "$old" -new "$new" \
    -norm 'BenchmarkVMExecute/loop/treewalk' -threshold 0.10 -alpha 0.05 \
    -ratio 'BenchmarkVMExecute/loop/treewalk,BenchmarkVMExecute/loop/bytecode,3.0' \
    -ratio 'BenchmarkWireUpload/gob,BenchmarkWireUpload/binary,2.0'
}

# fleet — stand up the sharded fleet tier (2 durable shards behind the
# router) and drive the load generator through it, recording the
# headline numbers (accepted traces/s, reports/min, directive p50/p99)
# to a BENCH_fleet.json entry.
fleet() {
  local out="${1:-BENCH_fleet.json}"
  local agents="${FLEET_AGENTS:-1000}"
  local port="${FLEET_PORT_BASE:-7100}"
  local tmp; tmp="$(mktemp -d)"
  local bin="$tmp/snorlax"
  echo "building cmd/snorlax..." >&2
  go build -o "$bin" ./cmd/snorlax

  # Deliberately not `local`: the EXIT trap fires after this function
  # has returned, and must still see the pids to reap.
  fleet_pids=()
  cleanup() {
    trap - EXIT INT TERM
    [ "${#fleet_pids[@]}" -gt 0 ] && kill "${fleet_pids[@]}" 2>/dev/null
    wait 2>/dev/null
    true
  }
  trap cleanup EXIT INT TERM

  "$bin" -serve "127.0.0.1:$((port + 1))" -fleet -state-dir "$tmp/s0" -case-base 0 >"$tmp/s0.log" 2>&1 &
  fleet_pids+=($!)
  "$bin" -serve "127.0.0.1:$((port + 2))" -fleet -state-dir "$tmp/s1" -case-base 4294967296 >"$tmp/s1.log" 2>&1 &
  fleet_pids+=($!)

  wait_port() {
    for _ in $(seq 1 100); do
      if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then exec 3>&- 3<&-; return 0; fi
      sleep 0.1
    done
    echo "port $1 never came up" >&2
    return 1
  }
  wait_port "$((port + 1))"
  wait_port "$((port + 2))"

  "$bin" -route "127.0.0.1:$port" \
    -shards "s0=127.0.0.1:$((port + 1)),s1=127.0.0.1:$((port + 2))" >"$tmp/router.log" 2>&1 &
  fleet_pids+=($!)
  wait_port "$port"

  echo "driving $agents agents through the router..." >&2
  "$bin" -loadgen "127.0.0.1:$port" -load-agents "$agents" -bench-out "$out"
}

case "${1:-}" in
  record)  shift; record "$@" ;;
  compare) shift; compare "$@" ;;
  fleet)   shift; fleet "$@" ;;
  *) echo "usage: $0 {record [out.txt] | compare <old.txt> [new.txt] | fleet [out.json]}" >&2; exit 2 ;;
esac
