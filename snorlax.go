// Package snorlax is a from-scratch reproduction of "Lazy Diagnosis
// of In-Production Concurrency Bugs" (SOSP 2017): a system that
// diagnoses the root causes of concurrency failures — deadlocks,
// order violations and atomicity violations — from coarse-grained
// hardware control-flow traces, with production-grade overhead.
//
// The package is a facade over the full pipeline:
//
//   - programs are written in a small typed IR (see ParseProgram for
//     the textual syntax) and executed on a deterministic simulated
//     multithreaded machine with a virtual-time clock;
//   - executions are traced by a simulated processor tracer (the
//     Intel PT analogue): per-thread 64 KB ring buffers of branch and
//     coarse-timing packets;
//   - a failing execution plus traces from successful executions feed
//     Lazy Diagnosis: trace processing, scope-restricted
//     inclusion-based points-to analysis, type-based ranking,
//     bug-pattern computation and statistical (F1) diagnosis.
//
// Quick start:
//
//	prog, _ := snorlax.ParseProgram(src)
//	failing := prog.Run(snorlax.RunOptions{Seed: 1})
//	var successes []*snorlax.Execution
//	for seed := int64(2); len(successes) < 10; seed++ {
//	    e := okProg.Run(snorlax.RunOptions{Seed: seed, TriggerPC: failing.FailurePC()})
//	    if !e.Failed() && e.Triggered() {
//	        successes = append(successes, e)
//	    }
//	}
//	report, _ := snorlax.NewDiagnoser(prog).Diagnose(failing, successes)
//	fmt.Println(report.Format())
package snorlax

import (
	"fmt"

	"snorlax/internal/core"
	"snorlax/internal/ir"
	"snorlax/internal/pt"
	"snorlax/internal/vm"
)

// Program is an executable IR module.
type Program struct {
	mod *ir.Module
}

// ParseProgram parses the textual IR format. The format is line
// oriented; see the repository README for the full grammar. A short
// example:
//
//	module counter
//	global total: int
//	global mu: mutex
//
//	func worker(n: int) {
//	entry:
//	  lock @mu
//	  %v = load @total
//	  %v2 = add %v, %n
//	  store %v2, @total
//	  unlock @mu
//	  ret
//	}
//
//	func main() {
//	entry:
//	  %t = spawn worker(5)
//	  call worker(7)
//	  join %t
//	  ret
//	}
func ParseProgram(src string) (*Program, error) {
	mod, err := ir.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Program{mod: mod}, nil
}

// MustParseProgram is ParseProgram that panics on error; convenient
// for programs embedded as constants.
func MustParseProgram(src string) *Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Text renders the program back in parseable form.
func (p *Program) Text() string { return ir.Print(p.mod) }

// NumInstrs returns the static instruction count.
func (p *Program) NumInstrs() int { return p.mod.NumInstrs() }

// Module exposes the underlying IR module for advanced use (the
// experiment harnesses use it; typical clients never need it).
func (p *Program) Module() *ir.Module { return p.mod }

// PC identifies a static instruction of a Program.
type PC = ir.PC

// NoPC is the invalid PC.
const NoPC = ir.NoPC

// RunOptions configures one traced execution.
type RunOptions struct {
	// Seed drives scheduling; same seed, same execution.
	Seed int64
	// TriggerPC arms a trace snapshot at that instruction — how
	// successful production executions are captured at a previous
	// failure's location.
	//
	// Caveat: PC 0 is a real instruction, but the zero value of
	// RunOptions must mean "untriggered", so TriggerPC == 0 is
	// treated as no trigger unless HasTrigger is set. Use WithTrigger
	// to arm a trigger at any PC, including 0.
	TriggerPC PC
	// HasTrigger makes TriggerPC authoritative: when set, the run
	// triggers at TriggerPC even if it is 0 (and runs untriggered
	// only for TriggerPC == NoPC).
	HasTrigger bool
	// MaxSteps bounds the execution (default 20M instructions).
	MaxSteps int64
}

// WithTrigger returns a copy of the options armed to snapshot at pc.
// Unlike assigning TriggerPC directly, it is valid at every PC,
// including PC 0 (the module's first instruction).
func (o RunOptions) WithTrigger(pc PC) RunOptions {
	o.TriggerPC = pc
	o.HasTrigger = true
	return o
}

// Execution is one traced run.
type Execution struct {
	prog   *Program
	report *core.RunReport
}

// Run executes the program once under the hardware tracer.
func (p *Program) Run(opts RunOptions) *Execution {
	client := core.NewClient(p.mod)
	client.VM = vm.Config{MaxSteps: opts.MaxSteps}
	trigger := ir.NoPC
	switch {
	case opts.HasTrigger:
		trigger = opts.TriggerPC
	case opts.TriggerPC != 0 && opts.TriggerPC != ir.NoPC:
		trigger = opts.TriggerPC
	}
	rep := client.Run(opts.Seed, trigger)
	return &Execution{prog: p, report: rep}
}

// Failed reports whether the execution crashed, deadlocked or hit the
// step limit.
func (e *Execution) Failed() bool { return e.report.Failed() }

// Triggered reports whether the armed trigger fired.
func (e *Execution) Triggered() bool { return e.report.Triggered }

// FailurePC returns the failing instruction's PC, or NoPC.
func (e *Execution) FailurePC() PC {
	if !e.Failed() {
		return NoPC
	}
	return e.report.Failure.PC
}

// FailureMessage describes the failure, or "" for successful runs.
func (e *Execution) FailureMessage() string {
	if !e.Failed() {
		return ""
	}
	return e.report.Failure.Msg
}

// Deadlocked reports whether the failure was a deadlock.
func (e *Execution) Deadlocked() bool {
	return e.Failed() && e.report.Failure.Deadlock
}

// Output returns the program's print output.
func (e *Execution) Output() []string { return e.report.Result.Output }

// VirtualTime returns the execution's final virtual clock in
// nanoseconds.
func (e *Execution) VirtualTime() int64 { return e.report.Result.Time }

// Snapshot exposes the captured trace rings (nil when neither a
// failure nor a trigger produced one).
func (e *Execution) Snapshot() *pt.Snapshot { return e.report.Snapshot }

// InstrString renders the instruction at pc, with its location.
func (p *Program) InstrString(pc PC) string {
	if int(pc) < 0 || int(pc) >= p.mod.NumInstrs() {
		return fmt.Sprintf("pc(%d)", pc)
	}
	in := p.mod.InstrAt(pc)
	return fmt.Sprintf("%s [%s]", in, in.Block())
}
