package snorlax

import (
	"snorlax/internal/core"
	"snorlax/internal/replay"
	"snorlax/internal/vm"
)

// ReplayLog is a recorded total order of shared memory accesses — the
// §3.3 corollary of the coarse interleaving hypothesis: order alone,
// no fine-grained timestamps, steers a re-execution back onto the
// recorded interleaving even in the presence of data races.
type ReplayLog struct {
	log *replay.Log
}

// Accesses returns the number of recorded shared accesses.
func (l *ReplayLog) Accesses() int { return len(l.log.Events) }

// RunRecorded executes the program once while recording the order of
// its shared (global-touching) memory accesses.
func (p *Program) RunRecorded(opts RunOptions) (*Execution, *ReplayLog) {
	cfg := vm.Config{Seed: opts.Seed, MaxSteps: opts.MaxSteps}
	res, log := replay.Record(p.mod, cfg, replay.SharedPCs(p.mod))
	return &Execution{prog: p, report: core.ReportFromResult(res)}, &ReplayLog{log: log}
}

// RunReplay re-executes the program under a recorded access order.
// The scheduler seed may differ from the recording's — the log, not
// the scheduler, decides every racing access, so racy outcomes
// (including crashes) reproduce deterministically.
func (p *Program) RunReplay(opts RunOptions, log *ReplayLog) (*Execution, error) {
	cfg := vm.Config{Seed: opts.Seed, MaxSteps: opts.MaxSteps}
	res, err := replay.Replay(p.mod, cfg, log.log)
	if err != nil {
		return nil, err
	}
	return &Execution{prog: p, report: core.ReportFromResult(res)}, nil
}
