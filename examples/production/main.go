// Production deployment: the client/server split of Figure 2 over a
// real TCP connection.
//
// The analysis server runs centrally (here: a goroutine on loopback).
// Production clients run the program under the always-on hardware
// tracer; when one fails, it uploads the failure report and its trace
// rings, the server arms a trigger, other clients upload traces from
// successful executions captured at that trigger, and the server
// returns the diagnosis.
//
// Run with: go run ./examples/production
package main

import (
	"fmt"
	"log"
	"net"

	snorlax "snorlax"
)

func cacheProgram(failing bool) *snorlax.Program {
	evictDelay, getDelay := 150_000, 350_000
	if !failing {
		evictDelay, getDelay = 500_000, 60_000
	}
	return snorlax.MustParseProgram(fmt.Sprintf(`
module cache
struct Item {
  hits: int
}
global lru_head: *Item

func get_worker() {
entry:
  sleep %d
  %%it = load @lru_head
  %%h = fieldaddr %%it, hits
  %%v = load %%h
  %%v2 = add %%v, 1
  store %%v2, %%h
  ret
}

func main() {
entry:
  %%it = new Item
  store %%it, @lru_head
  %%g = spawn get_worker()
  sleep %d
  store null:*Item, @lru_head
  join %%g
  ret
}
`, getDelay, evictDelay))
}

func main() {
	failProg := cacheProgram(true)
	okProg := cacheProgram(false)

	// Central analysis server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() {
		if err := snorlax.Serve(ln, failProg); err != nil {
			log.Print(err)
		}
	}()
	fmt.Printf("analysis server listening on %s\n", ln.Addr())

	// Production client: always-on tracing; the failure arrives.
	client, err := snorlax.Dial("tcp", ln.Addr().String(), failProg)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	failing := failProg.Run(snorlax.RunOptions{Seed: 1})
	if !failing.Failed() {
		log.Fatal("expected the eviction race to crash")
	}
	trigger, err := client.ReportFailure(failing)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded failure %q; server armed trigger at pc=%d\n",
		failing.FailureMessage(), trigger)

	// Other production clients keep succeeding; their traces stream in.
	uploaded := 0
	for seed := int64(1); uploaded < 10 && seed < 60; seed++ {
		e := okProg.Run(snorlax.RunOptions{Seed: seed, TriggerPC: trigger})
		if e.Failed() || !e.Triggered() {
			continue
		}
		if err := client.SendSuccess(e); err != nil {
			log.Fatal(err)
		}
		uploaded++
	}
	fmt.Printf("uploaded %d successful traces\n\n", uploaded)

	report, err := client.Diagnose()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Format())
	fmt.Printf("server-side verdict: %v (%s), confidence F1=%.2f\n",
		report.Kind, report.Pattern, report.F1)
}
