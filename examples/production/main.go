// Production deployment: the multi-tenant fleet split of Figure 2
// over a real TCP connection.
//
// The analysis server runs centrally (here: a goroutine on loopback)
// and serves many programs at once. A fleet of production clients
// registers the deployed program — all replicas land on one tenant,
// keyed by the program's fingerprint — and runs it under the always-on
// hardware tracer. When replicas fail, they report the failure; every
// report of the same failure PC joins one diagnosis case, and the
// server answers with a collection directive ("snapshot successful
// executions triggered at PC X"). The replicas batch-upload triggered
// snapshots until the server has its 10x success quota, at which point
// it diagnoses the case and publishes the report for any client to
// fetch.
//
// Run with: go run ./examples/production
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	snorlax "snorlax"
)

func cacheProgram(failing bool) *snorlax.Program {
	evictDelay, getDelay := 150_000, 350_000
	if !failing {
		evictDelay, getDelay = 500_000, 60_000
	}
	return snorlax.MustParseProgram(fmt.Sprintf(`
module cache
struct Item {
  hits: int
}
global lru_head: *Item

func get_worker() {
entry:
  sleep %d
  %%it = load @lru_head
  %%h = fieldaddr %%it, hits
  %%v = load %%h
  %%v2 = add %%v, 1
  store %%v2, %%h
  ret
}

func main() {
entry:
  %%it = new Item
  store %%it, @lru_head
  %%g = spawn get_worker()
  sleep %d
  store null:*Item, @lru_head
  join %%g
  ret
}
`, getDelay, evictDelay))
}

func main() {
	failProg := cacheProgram(true)
	okProg := cacheProgram(false)

	// Central multi-tenant analysis server. The deployed program is
	// pre-registered; clients could also upload it themselves. Fleet
	// state is durable: every case transition is write-ahead logged
	// under the state directory before it is acknowledged.
	stateDir, err := os.MkdirTemp("", "snorlax-state-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateDir)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	srv, err := snorlax.NewServer(failProg, snorlax.ServeConfig{StateDir: stateDir})
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Serve(ln); err != nil {
			log.Print(err)
		}
	}()
	fmt.Printf("fleet analysis server listening on %s (state in %s)\n", ln.Addr(), stateDir)

	// A fleet of four production replicas: each registers the program,
	// reproduces the failure, reports it (all four join one case), then
	// runs the fixed build with the directive's trigger armed and
	// batch-uploads triggered snapshots until the quota is met.
	res, err := snorlax.RunFleet("tcp", ln.Addr().String(), failProg, okProg,
		snorlax.FleetConfig{Clients: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant %.12s... case %d: %d uploads sent, %d accepted toward the quota\n\n",
		res.Tenant, res.Case, res.Uploaded, res.Accepted)

	report := res.Report
	fmt.Println(report.Format())
	fmt.Printf("published verdict: %v (%s), confidence F1=%.2f\n",
		report.Kind, report.Pattern, report.F1)

	// The server restarts — deliberately, here; a crash recovers the
	// same way, minus at most the last unsynced flush interval. The
	// write-ahead log is replayed, and the published report is served
	// straight from disk: no re-diagnosis, no re-collection.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	st := srv.Store()
	fmt.Printf("\nserver restarting: %d records logged (%d bytes, %d fsyncs)\n",
		st.AppendedRecords, st.AppendedBytes, st.Fsyncs)

	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln2.Close()
	srv2, err := snorlax.NewServer(failProg, snorlax.ServeConfig{StateDir: stateDir})
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv2.Serve(ln2); err != nil {
			log.Print(err)
		}
	}()
	defer srv2.Shutdown(context.Background())

	fc, err := snorlax.DialFleet("tcp", ln2.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer fc.Close()
	recovered, done, err := fc.FetchReport(failProg, res.Tenant, res.Case, res.TriggerPC)
	if err != nil {
		log.Fatal(err)
	}
	if !done || recovered == nil {
		log.Fatalf("case %d not re-served after recovery", res.Case)
	}
	fmt.Printf("recovered server re-serves case %d from disk: %v (%s), F1=%.2f — %d diagnoses run since restart\n",
		res.Case, recovered.Kind, recovered.Pattern, recovered.F1,
		srv2.Status().CompletedDiagnoses)
}
