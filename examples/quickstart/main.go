// Quickstart: diagnose a use-after-free order violation.
//
// A worker thread dequeues from a shared queue while the main thread
// tears it down — the classic pbzip2 crash. We reproduce the failure
// once under the hardware tracer, gather traces from ten successful
// executions at the failure location, and let Lazy Diagnosis name the
// racing instructions.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	snorlax "snorlax"
)

// program builds the demo in two delay variants with identical
// instruction layout: in production the same binary usually succeeds
// and rarely fails; here the delays select the interleaving.
func program(failing bool) *snorlax.Program {
	consumerDelay, teardownDelay := 300_000, 100_000
	if !failing {
		consumerDelay, teardownDelay = 50_000, 400_000
	}
	return snorlax.MustParseProgram(fmt.Sprintf(`
module quickstart
struct Block {
  size: int
}
global fifo: *Block

func consumer() {
entry:
  sleep %d
  %%b = load @fifo
  %%sz = fieldaddr %%b, size
  %%v = load %%sz
  ret
}

func main() {
entry:
  %%b = new Block
  store %%b, @fifo
  %%t = spawn consumer()
  sleep %d
  store null:*Block, @fifo
  join %%t
  ret
}
`, consumerDelay, teardownDelay))
}

func main() {
	failProg := program(true)
	okProg := program(false)

	// Step 1: a production failure occurs; the trace rings are saved.
	failing := failProg.Run(snorlax.RunOptions{Seed: 1})
	if !failing.Failed() {
		log.Fatal("expected the failing variant to crash")
	}
	fmt.Printf("observed failure: %s\n", failing.FailureMessage())
	fmt.Printf("failing instruction: %s\n\n", failProg.InstrString(failing.FailurePC()))

	// Step 8: successful executions are traced at the failure PC.
	var successes []*snorlax.Execution
	for seed := int64(1); len(successes) < 10; seed++ {
		e := okProg.Run(snorlax.RunOptions{Seed: seed, TriggerPC: failing.FailurePC()})
		if !e.Failed() && e.Triggered() {
			successes = append(successes, e)
		}
	}

	// Steps 2-7: Lazy Diagnosis.
	report, err := snorlax.NewDiagnoser(failProg).Diagnose(failing, successes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Format())
	fmt.Printf("diagnosed after %d failure with %d successful traces\n", 1, len(successes))
	for i, ev := range report.Events {
		fmt.Printf("  racing access %d: %s\n", i+1, ev.Instr)
	}
}
