// Record/replay on coarse access order — the §3.3 corollary of the
// coarse interleaving hypothesis.
//
// Two threads race on an unsynchronized counter, so the final value
// depends on the scheduler. We record one execution's order of shared
// accesses (order only — no timestamps, no memory contents), then
// replay it under five different scheduler seeds: every replay
// reproduces the recorded outcome exactly, because the log, not the
// scheduler, decides each racing access.
//
// Run with: go run ./examples/recordreplay
package main

import (
	"fmt"
	"log"

	snorlax "snorlax"
)

const src = `
module tally
global hits: int

func worker(n: int) {
entry:
  %i = alloca int
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = lt %iv, %n
  condbr %c, body, done
body:
  %h = load @hits
  %h2 = add %h, 1
  store %h2, @hits
  %iv2 = add %iv, 1
  store %iv2, %i
  br loop
done:
  ret
}

func main() {
entry:
  %t1 = spawn worker(4000)
  %t2 = spawn worker(4000)
  join %t1
  join %t2
  %final = load @hits
  print %final
  ret
}
`

func main() {
	prog := snorlax.MustParseProgram(src)

	// Without replay: the lost-update race makes the result vary.
	fmt.Println("free-running executions (result is schedule-dependent):")
	outcomes := map[string]bool{}
	for seed := int64(0); seed < 6; seed++ {
		e := prog.Run(snorlax.RunOptions{Seed: seed})
		if e.Failed() {
			log.Fatal(e.FailureMessage())
		}
		fmt.Printf("  seed %d: hits = %s\n", seed, e.Output()[0])
		outcomes[e.Output()[0]] = true
	}
	fmt.Printf("  distinct outcomes: %d\n\n", len(outcomes))

	// Record one execution's shared-access order.
	recorded, replayLog := prog.RunRecorded(snorlax.RunOptions{Seed: 3})
	if recorded.Failed() {
		log.Fatal(recorded.FailureMessage())
	}
	want := recorded.Output()[0]
	fmt.Printf("recorded run (seed 3): hits = %s, %d shared accesses logged\n\n",
		want, replayLog.Accesses())

	// Replay under different seeds: the outcome is pinned.
	fmt.Println("replayed executions (order enforced from the log):")
	for seed := int64(10); seed < 15; seed++ {
		e, err := prog.RunReplay(snorlax.RunOptions{Seed: seed}, replayLog)
		if err != nil {
			log.Fatal(err)
		}
		status := "== recorded"
		if e.Output()[0] != want {
			status = "DIVERGED"
		}
		fmt.Printf("  seed %d: hits = %s  %s\n", seed, e.Output()[0], status)
	}
}
