// Web-server order violation: a worker consumes the virtual-host
// configuration before the listener thread has published it — the
// read-before-init direction of Figure 1(b), where the root cause is
// that the failing read executed before the write that should precede
// it. Snorlax diagnoses it from the *absence* of the initializing
// write in the failing trace.
//
// Run with: go run ./examples/webserver
package main

import (
	"fmt"
	"log"

	snorlax "snorlax"
)

func server(workerDelay, configDelay int) *snorlax.Program {
	return snorlax.MustParseProgram(fmt.Sprintf(`
module webserver
struct VHostConfig {
  maxconns: int
}
global config: *VHostConfig
global served: int

func request_worker() {
entry:
  sleep %d
  %%cfg = load @config
  sleep 400000
  %%mc = fieldaddr %%cfg, maxconns
  %%limit = load %%mc
  %%count = load @served
  %%c = lt %%count, %%limit
  condbr %%c, serve, reject
serve:
  %%count2 = add %%count, 1
  store %%count2, @served
  ret
reject:
  ret
}

func listener() {
entry:
  sleep %d
  %%cfg = new VHostConfig
  %%mc = fieldaddr %%cfg, maxconns
  store 128, %%mc
  store %%cfg, @config
  ret
}

func main() {
entry:
  %%l = spawn listener()
  %%w = spawn request_worker()
  join %%l
  join %%w
  ret
}
`, workerDelay, configDelay))
}

func main() {
	// Failing: the worker reads @config 150µs before the listener
	// publishes it. Successful: the listener wins comfortably.
	failProg := server(100_000, 250_000)
	okProg := server(400_000, 100_000)

	failing := failProg.Run(snorlax.RunOptions{Seed: 2})
	if !failing.Failed() {
		log.Fatal("expected the worker to crash on the unpublished config")
	}
	fmt.Printf("crash: %s\n\n", failing.FailureMessage())

	var successes []*snorlax.Execution
	for seed := int64(1); len(successes) < 10 && seed < 60; seed++ {
		e := okProg.Run(snorlax.RunOptions{Seed: seed, TriggerPC: failing.FailurePC()})
		if !e.Failed() && e.Triggered() {
			successes = append(successes, e)
		}
	}

	report, err := snorlax.NewDiagnoser(failProg).Diagnose(failing, successes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Format())
	if report.Kind != snorlax.OrderViolation {
		log.Fatalf("diagnosed %v, expected an order violation", report.Kind)
	}
	fmt.Println("diagnosis: the config read executed before the publishing store —")
	fmt.Println("the worker must wait for (or be spawned after) initialization.")
}
