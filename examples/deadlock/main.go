// Deadlock diagnosis: the classic bank-transfer lock-order inversion.
//
// transfer(a, b) and transfer(b, a) run concurrently, each locking
// its source account first. When both grab their first lock before
// either grabs its second, the program hangs; the simulated OS
// detects the waits-for cycle and Snorlax reconstructs the full
// acquisition pattern — which lock each thread held and where it
// blocked — from the hardware trace.
//
// Run with: go run ./examples/deadlock
package main

import (
	"fmt"
	"log"

	snorlax "snorlax"
)

func bank(holdNS int, staggered bool) *snorlax.Program {
	stagger := 30_000
	if staggered {
		// The successful configuration: the second teller starts
		// after the first has finished.
		stagger = 600_000
	}
	return snorlax.MustParseProgram(fmt.Sprintf(`
module bank
struct Account {
  guard: mutex
  balance: int
}
global checking: *Account
global savings: *Account

func transfer(from: *Account, to: *Account, amount: int, hold: int) {
entry:
  %%fm = fieldaddr %%from, guard
  lock %%fm
  sleep %%hold
  %%tm = fieldaddr %%to, guard
  lock %%tm
  %%fb = fieldaddr %%from, balance
  %%tb = fieldaddr %%to, balance
  %%fv = load %%fb
  %%tv = load %%tb
  %%fv2 = sub %%fv, %%amount
  %%tv2 = add %%tv, %%amount
  store %%fv2, %%fb
  store %%tv2, %%tb
  unlock %%tm
  unlock %%fm
  ret
}

func teller1() {
entry:
  %%a = load @checking
  %%b = load @savings
  call transfer(%%a, %%b, 100, %d)
  ret
}

func teller2() {
entry:
  sleep %d
  %%a = load @savings
  %%b = load @checking
  call transfer(%%a, %%b, 50, %d)
  ret
}

func main() {
entry:
  %%c = new Account
  %%s = new Account
  %%cb = fieldaddr %%c, balance
  %%sb = fieldaddr %%s, balance
  store 1000, %%cb
  store 2000, %%sb
  store %%c, @checking
  store %%s, @savings
  %%t1 = spawn teller1()
  %%t2 = spawn teller2()
  join %%t1
  join %%t2
  ret
}
`, holdNS, stagger, holdNS))
}

func main() {
	failProg := bank(400_000, false)
	okProg := bank(1, true)

	failing := failProg.Run(snorlax.RunOptions{Seed: 3})
	if !failing.Deadlocked() {
		log.Fatalf("expected a deadlock, got: failed=%v %s", failing.Failed(), failing.FailureMessage())
	}
	fmt.Printf("hang detected: %s\n\n", failing.FailureMessage())

	var successes []*snorlax.Execution
	for seed := int64(1); len(successes) < 10 && seed < 60; seed++ {
		e := okProg.Run(snorlax.RunOptions{Seed: seed, TriggerPC: failing.FailurePC()})
		if !e.Failed() && e.Triggered() {
			successes = append(successes, e)
		}
	}

	report, err := snorlax.NewDiagnoser(failProg).Diagnose(failing, successes)
	if err != nil {
		log.Fatal(err)
	}
	if report.Kind != snorlax.Deadlock {
		log.Fatalf("diagnosed %v, expected a deadlock", report.Kind)
	}
	fmt.Println(report.Format())
	fmt.Println("cycle (held lock → blocked acquisition, per thread):")
	for i := 0; i+1 < len(report.Events); i += 2 {
		fmt.Printf("  thread holds %s\n       blocks on %s\n",
			report.Events[i].Instr, report.Events[i+1].Instr)
	}
	fmt.Println("\nfix: impose a global lock order (e.g. lock the lower-addressed account first)")
}
