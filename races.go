package snorlax

import (
	"fmt"

	"snorlax/internal/racedet"
	"snorlax/internal/vm"
)

// RaceReport is one detected data race: two program points that
// accessed the same memory word without a common lock, at least one
// writing.
type RaceReport struct {
	// First and Second render the two racing instructions.
	First, Second string
	// FirstPC and SecondPC are their program counters.
	FirstPC, SecondPC PC
}

func (r RaceReport) String() string {
	return fmt.Sprintf("race: %s  vs  %s", r.First, r.Second)
}

// DetectRaces runs the program once under an Eraser-style lockset
// race detector and returns the races observed on that schedule.
// Order and atomicity violations are in many cases caused by data
// races (§3.1 of the paper), so this is the screening step that
// precedes diagnosis — and its reports select the accesses a
// record/replay engine needs to monitor (§3.3).
func (p *Program) DetectRaces(opts RunOptions) []RaceReport {
	races, _ := racedet.Detect(p.mod, vm.Config{Seed: opts.Seed, MaxSteps: opts.MaxSteps})
	out := make([]RaceReport, 0, len(races))
	for _, r := range races {
		out = append(out, RaceReport{
			First:    p.InstrString(r.First),
			Second:   p.InstrString(r.Second),
			FirstPC:  r.First,
			SecondPC: r.Second,
		})
	}
	return out
}
