module snorlax

go 1.22
