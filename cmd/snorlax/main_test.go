package main

// Golden-output tests for the CLI's report rendering. The diagnosis
// pipeline is deterministic end to end (seeded VM, seeded schedules),
// so apart from wall-clock timings — normalized away below — the
// rendered report is a stable artifact worth pinning: it is the
// interface developers actually read.
//
// Refresh after an intentional rendering change with:
//
//	go test ./cmd/snorlax/ -run Golden -update

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"snorlax/internal/corpus"
)

var update = flag.Bool("update", false, "rewrite golden files")

// timingRE matches the one nondeterministic report line.
var timingRE = regexp.MustCompile(`server-side analysis: \S+ \(points-to \S+\)`)

func normalize(s string) string {
	return timingRE.ReplaceAllString(s, "server-side analysis: <dur> (points-to <dur>)")
}

func checkGolden(t *testing.T, name string, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test ./cmd/snorlax/ -run Golden -update)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from the golden file (run with -update if intentional)\n--- got ---\n%s--- want ---\n%s",
			name, got, want)
	}
}

func TestDiagnoseGolden(t *testing.T) {
	for _, id := range []string{"pbzip2-1", "aget-1"} {
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if !diagnose(&buf, corpus.ByID(id)) {
				t.Fatalf("diagnosis of %s did not match ground truth", id)
			}
			checkGolden(t, "diagnose-"+id+".golden", normalize(buf.String()))
		})
	}
}

func TestListGolden(t *testing.T) {
	var buf bytes.Buffer
	list(&buf)
	checkGolden(t, "list.golden", buf.String())
}
