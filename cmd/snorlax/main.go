// Command snorlax diagnoses a corpus concurrency bug end-to-end: it
// reproduces the failure under the simulated hardware tracer, gathers
// traces from successful executions at the failure location, runs
// Lazy Diagnosis, and prints the root cause next to the ground truth.
//
// Usage:
//
//	snorlax -list
//	snorlax -bug pbzip2-1
//	snorlax -all
//
// Fleet mode (multi-tenant server, on-demand collection):
//
//	snorlax -serve :7007 -fleet
//	snorlax -remote :7007 -bug pbzip2-1 -agent 4
//
// Sharded fleet tier (router + durable shards + load generator):
//
//	snorlax -serve :7101 -fleet -state-dir /var/lib/snorlax/s0 -case-base 0
//	snorlax -serve :7102 -fleet -state-dir /var/lib/snorlax/s1 -case-base 4294967296
//	snorlax -route :7100 -shards "s0=127.0.0.1:7101,s1=127.0.0.1:7102"
//	snorlax -loadgen 127.0.0.1:7100 -load-agents 1000 -bench-out BENCH_fleet.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/fleet"
	"snorlax/internal/ir"
	"snorlax/internal/obs"
	"snorlax/internal/proto"
	"snorlax/internal/store"
)

var (
	bugID     = flag.String("bug", "", "corpus bug id to diagnose (see -list)")
	listAll   = flag.Bool("list", false, "list the corpus bugs")
	all       = flag.Bool("all", false, "diagnose every corpus bug")
	serve     = flag.String("serve", "", "run an analysis server for -bug on this address (e.g. :7007)")
	remote    = flag.String("remote", "", "diagnose -bug against a remote analysis server at this address")
	fleetMode = flag.Bool("fleet", false, "-serve: multi-tenant fleet mode; every corpus bug (or just -bug) is pre-registered and clients may register more")
	agents    = flag.Int("agent", 0, "run this many simulated fleet agents for -bug against the -remote fleet server")
	quota     = flag.Int("quota", 0, "-serve -fleet: per-case success-trace quota (0 = the paper's 10x)")
	workers   = flag.Int("workers", 0, "success-trace pool size for -serve (0 = GOMAXPROCS)")
	maxDiag   = flag.Int("max-diagnoses", 0, "concurrent diagnosis bound for -serve (0 = GOMAXPROCS)")

	idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "-serve: drop connections idle this long (0 = never)")
	writeTimeout = flag.Duration("write-timeout", 30*time.Second, "-serve: per-reply write deadline (0 = none)")
	maxSnapshot  = flag.Int64("max-snapshot-bytes", 0, "-serve: per-upload snapshot byte cap (0 = 64MB default, <0 = unlimited)")
	maxSucc      = flag.Int("max-successes", 0, "-serve: success traces accepted per connection (0 = 1024 default, <0 = unlimited)")
	drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "-serve: how long SIGINT/SIGTERM shutdown waits for in-flight work")
	retries      = flag.Int("retries", 8, "-remote: attempts per operation before giving up")
	metricsAddr  = flag.String("metrics-addr", "", "-serve: also serve GET /metrics (Prometheus text format) and /debug/pprof/* on this address (e.g. 127.0.0.1:9090); empty = disabled")
	stateDir     = flag.String("state-dir", "", "-serve: persist fleet state (cases, accepted traces, published reports) to a write-ahead log in this directory and recover it on restart; empty = in-memory only")
	syncPolicy   = flag.String("sync", "interval", "-serve: when the state log is fsynced: always, interval or never")
	wireFlag     = flag.String("wire", "", "client/agent/router-upstream codec: binary (default) or gob (deprecated legacy oracle); empty = $SNORLAX_WIRE or binary. Servers and routers auto-negotiate both.")
)

// wireVersion resolves the -wire flag (falling back to SNORLAX_WIRE)
// for every client-side connection this binary opens; servers need no
// knob, they negotiate per connection off the preamble.
func wireVersion() proto.WireVersion {
	if *wireFlag == "" {
		return proto.WireFromEnv()
	}
	v, err := proto.ParseWireVersion(*wireFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return v
}

func main() {
	flag.Parse()
	switch {
	case *route != "":
		runRouter(*route)
	case *loadgen != "":
		if !runLoadgen(*loadgen) {
			os.Exit(1)
		}
	case *serve != "":
		runServer(*serve)
	case *remote != "" && *agents > 0:
		if !fleetAgents(*remote, lookup(*bugID), *agents) {
			os.Exit(1)
		}
	case *remote != "":
		if !remoteDiagnose(*remote, lookup(*bugID)) {
			os.Exit(1)
		}
	case *listAll:
		list(os.Stdout)
	case *all:
		exitCode := 0
		for _, b := range corpus.All() {
			if !diagnose(os.Stdout, b) {
				exitCode = 1
			}
		}
		for _, b := range corpus.Extensions() {
			if !diagnose(os.Stdout, b) {
				exitCode = 1
			}
		}
		os.Exit(exitCode)
	case *bugID != "":
		if !diagnose(os.Stdout, lookup(*bugID)) {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func lookup(id string) *corpus.Bug {
	if id == "" {
		fmt.Fprintln(os.Stderr, "a -bug id is required; try -list")
		os.Exit(2)
	}
	b := corpus.ByID(id)
	if b == nil {
		b = corpus.ExtensionByID(id)
	}
	if b == nil {
		fmt.Fprintf(os.Stderr, "unknown bug %q; try -list\n", id)
		os.Exit(2)
	}
	return b
}

// runServer hosts the analysis side of Figure 2; clients connect with
// -remote. In -fleet mode the server is multi-tenant: corpus programs
// are pre-registered and client agents (-agent) drive the on-demand
// collection loop. SIGINT/SIGTERM drain gracefully: in-flight
// diagnoses finish (up to -drain-timeout) before exit.
func runServer(addr string) {
	var mod *ir.Module
	switch {
	case *bugID != "":
		mod = lookup(*bugID).Build(corpus.Variant{Failing: true}).Mod
	case *fleetMode:
		// Fleet-only server: the base module is a placeholder; every
		// diagnosed program arrives by (pre-)registration.
		var err error
		mod, err = ir.Parse("module fleet\n\nfunc main() {\nentry:\n  ret\n}\n")
		if err != nil {
			panic(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "-serve needs -bug (or -fleet); try -list")
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cs := core.NewServer(mod)
	cs.Workers = *workers
	ps := proto.NewServer(cs)
	ps.MaxConcurrent = *maxDiag
	ps.IdleTimeout = *idleTimeout
	ps.WriteTimeout = *writeTimeout
	ps.MaxSnapshotBytes = *maxSnapshot
	ps.MaxSuccessesPerConn = *maxSucc
	ps.FleetQuota = *quota
	ps.CaseBase = *caseBase
	if *stateDir != "" {
		pol, err := store.ParseSyncPolicy(*syncPolicy)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		w, err := store.Open(*stateDir, store.Options{SyncPolicy: pol, Registry: ps.Metrics()})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ps.Store = w
		if err := ps.Restore(w.RecoveredState()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st := w.Stats()
		fmt.Printf("durable state in %s (sync=%s, recovered through lsn %d, %d torn-tail truncations)\n",
			*stateDir, pol, st.LastLSN, st.TruncatedRecoveries)
	}
	register := func(m *ir.Module) {
		if _, err := ps.RegisterProgram(m); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *fleetMode {
		registered := 0
		if *bugID != "" {
			register(mod)
			registered = 1
		} else {
			for _, b := range corpus.All() {
				register(b.Build(corpus.Variant{Failing: true}).Mod)
				registered++
			}
		}
		fmt.Printf("fleet analysis server listening on %s (%d programs pre-registered)\n",
			ln.Addr(), registered)
	} else {
		fmt.Printf("analysis server for %s listening on %s\n", *bugID, ln.Addr())
	}

	var msrv *http.Server
	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("metrics on http://%s/metrics (pprof on /debug/pprof/)\n", mln.Addr())
		msrv = &http.Server{Handler: obs.DebugMux(ps.Metrics(), ps.Ready)}
		go func() {
			if err := msrv.Serve(mln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	exitCode := 0
	go func() {
		defer close(done)
		s := <-sig
		fmt.Printf("%s: draining (up to %s)...\n", s, *drainTimeout)
		exitCode = drain(ps, *drainTimeout)
		if msrv != nil {
			msrv.Shutdown(context.Background())
		}
		st := ps.Status()
		fmt.Printf("served %d diagnoses (%d failed, %d dropped traces, %d panics recovered)\n",
			st.CompletedDiagnoses, st.FailedDiagnoses, st.DroppedSuccesses, st.PanicsRecovered)
	}()
	if err := ps.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-done
	os.Exit(exitCode)
}

// drain shuts the server down gracefully and maps the outcome to the
// process exit code. A failed drain is an operational failure — in
// particular a store flush error, which means state the server
// acknowledged may not be on disk — so it must not exit 0 and look
// healthy to the supervisor.
func drain(ps *proto.Server, timeout time.Duration) int {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := ps.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		return 1
	}
	return 0
}

// remoteDiagnose plays the production-client side: reproduce the
// failure locally, ship the trace to the server, stream successful
// traces, and print the server's verdict. The client retries through
// transport faults, reconnecting and replaying the session.
func remoteDiagnose(addr string, b *corpus.Bug) bool {
	failInst := b.Build(corpus.Variant{Failing: true})
	okInst := b.Build(corpus.Variant{Failing: false})

	conn := proto.DialRetrying("tcp", addr, proto.RetryConfig{MaxAttempts: *retries, Wire: wireVersion()})
	defer conn.Close()

	failClient := core.NewClient(failInst.Mod)
	var rep *core.RunReport
	for seed := int64(1); seed <= 20; seed++ {
		if r := failClient.Run(seed, ir.NoPC); r.Failed() {
			rep = r
			break
		}
	}
	if rep == nil {
		fmt.Fprintln(os.Stderr, "could not reproduce the failure")
		return false
	}
	trigger, err := conn.ReportFailure(rep.Failure, rep.Snapshot)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return false
	}
	fmt.Printf("uploaded failure %q; server armed trigger at pc=%d\n", rep.Failure.Msg, trigger)

	okClient := core.NewClient(okInst.Mod)
	sent := 0
	for seed := int64(1); sent < 10 && seed < 60; seed++ {
		okRep := okClient.Run(seed+500, trigger)
		if okRep.Failed() || !okRep.Triggered {
			continue
		}
		if err := conn.SendSuccess(okRep.Snapshot); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return false
		}
		sent++
	}
	fmt.Printf("uploaded %d successful traces\n", sent)

	d, err := conn.RequestDiagnosis()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return false
	}
	if n := conn.Retries(); n > 0 {
		fmt.Printf("recovered from %d transport faults\n", n)
	}
	if d.Stats.DroppedSuccesses > 0 {
		fmt.Printf("server dropped %d corrupt success traces\n", d.Stats.DroppedSuccesses)
	}
	fmt.Print(indent(core.Format(failInst.Mod, d)))
	truth := core.Truth{Kind: failInst.TruthKind, Sub: failInst.TruthSub,
		PCs: failInst.TruthPCs, Absence: failInst.TruthAbsence}
	ok := core.MatchesTruth(d.Best.Pattern, truth)
	if ok {
		fmt.Println("    ground truth: MATCHES developer fix")
	} else {
		fmt.Println("    ground truth: DOES NOT MATCH")
	}
	return ok
}

// fleetAgents runs n simulated production clients for one corpus bug
// against a fleet-mode server: register, reproduce and report the
// failure, collect triggered success traces on the server's directive,
// and print the published report once the quota is met.
func fleetAgents(addr string, b *corpus.Bug, n int) bool {
	failInst := b.Build(corpus.Variant{Failing: true})
	okInst := b.Build(corpus.Variant{Failing: false})
	res, err := fleet.Run(
		fleet.Program{Fail: failInst.Mod, OK: okInst.Mod},
		fleet.Config{
			Dial:    func() (net.Conn, error) { return net.Dial("tcp", addr) },
			Clients: n,
			Wire:    wireVersion(),
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return false
	}
	fmt.Printf("%d agents: case %d under tenant %.12s… diagnosed from %d accepted uploads (%d sent)\n",
		n, res.Case, res.Tenant, res.Accepted, res.Uploaded)
	fmt.Print(indent(core.Format(failInst.Mod, res.Diagnosis)))
	truth := core.Truth{Kind: failInst.TruthKind, Sub: failInst.TruthSub,
		PCs: failInst.TruthPCs, Absence: failInst.TruthAbsence}
	if core.MatchesTruth(res.Diagnosis.Best.Pattern, truth) {
		fmt.Println("    ground truth: MATCHES developer fix")
		return true
	}
	fmt.Println("    ground truth: DOES NOT MATCH")
	return false
}

func list(w io.Writer) {
	fmt.Fprintf(w, "%-16s %-20s %-6s %-5s %s\n", "ID", "KIND", "LANG", "EVAL", "DESCRIPTION")
	for _, b := range corpus.All() {
		eval := ""
		if b.Eval {
			eval = "yes"
		}
		fmt.Fprintf(w, "%-16s %-20s %-6s %-5s %s\n", b.ID, b.Kind, b.Lang, eval, b.Description)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "extensions (beyond the paper's evaluation):")
	for _, b := range corpus.Extensions() {
		fmt.Fprintf(w, "%-16s %-20s %-6s %-5s %s\n", b.ID, b.Kind, b.Lang, "ext", b.Description)
	}
}

func diagnose(w io.Writer, b *corpus.Bug) bool {
	fmt.Fprintf(w, "=== %s (%s): %s\n", b.ID, b.Kind, b.Description)
	failInst := b.Build(corpus.Variant{Failing: true})
	okInst := b.Build(corpus.Variant{Failing: false})
	sess := core.NewSession(failInst.Mod, okInst.Mod)
	out, err := sess.Run()
	if err != nil {
		fmt.Fprintf(w, "    session error: %v\n", err)
		return false
	}
	fmt.Fprintf(w, "    failure: %s (pc=%d thread=%d)\n", out.Failure.Msg, out.Failure.PC, out.Failure.Tid)
	fmt.Fprint(w, indent(core.Format(failInst.Mod, out.Diagnosis)))
	truth := core.Truth{Kind: failInst.TruthKind, Sub: failInst.TruthSub,
		PCs: failInst.TruthPCs, Absence: failInst.TruthAbsence}
	correct := core.MatchesTruth(out.Diagnosis.Best.Pattern, truth)
	ao := core.OrderingAccuracy(out.Diagnosis.Best.Pattern, truth)
	verdict := "MATCHES developer fix"
	if !correct {
		verdict = "DOES NOT MATCH ground truth"
	}
	fmt.Fprintf(w, "    ground truth: %s  (ordering accuracy %.0f%%)\n\n", verdict, ao)
	return correct
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
