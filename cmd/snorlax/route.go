package main

// The sharded fleet tier's operational entry points: -route runs the
// stateless shard router in front of -serve -fleet shards (each with
// its own -state-dir and -case-base), and -loadgen drives the fleet
// load generator against a server or router, optionally recording the
// headline numbers to a BENCH_fleet.json.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"snorlax/internal/corpus"
	"snorlax/internal/fleet"
	"snorlax/internal/obs"
	"snorlax/internal/proto"
	"snorlax/internal/shard"
)

var (
	route      = flag.String("route", "", "run a stateless shard router on this address (requires -shards)")
	shardsFlag = flag.String("shards", "", "-route: comma-separated shard members, each name=addr or name=addr;readyz-url")
	caseBase   = flag.Uint64("case-base", 0, "-serve -fleet: namespace case ids above this base; give each shard a disjoint base (shard i conventionally gets i<<32)")

	loadgen    = flag.String("loadgen", "", "drive the fleet load generator against the server or router at this address")
	loadAgents = flag.Int("load-agents", 1000, "-loadgen: simulated agents")
	loadConc   = flag.Int("load-concurrency", 64, "-loadgen: simultaneously connected agents")
	loadBugs   = flag.String("load-bugs", "dbcp-1,httpd-4,derby-3,groovy-2", "-loadgen: corpus bugs to drive, one tenant/case each")
	loadWave   = flag.Duration("load-stagger", 0, "-loadgen: delay between program waves")
	benchOut   = flag.String("bench-out", "", "-loadgen: append the run's headline numbers to this JSON file (e.g. BENCH_fleet.json)")
)

// parseMembers parses the -shards flag: comma-separated members, each
// "name=addr", "name=addr;health-url", or a bare "addr" (which names
// itself). The member order is the router's unrouted-fallback scan
// order; the ring itself is order-independent.
func parseMembers(spec string) ([]shard.Member, error) {
	var ms []shard.Member
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		m := shard.Member{}
		if eq := strings.IndexByte(raw, '='); eq >= 0 {
			m.Name, raw = raw[:eq], raw[eq+1:]
		}
		if semi := strings.IndexByte(raw, ';'); semi >= 0 {
			raw, m.HealthURL = raw[:semi], raw[semi+1:]
		}
		m.Addr = raw
		if m.Name == "" {
			m.Name = m.Addr
		}
		if m.Addr == "" {
			return nil, fmt.Errorf("shard member %q has no address", m.Name)
		}
		ms = append(ms, m)
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("-route needs at least one -shards member")
	}
	return ms, nil
}

func sumCounter(reg *obs.Registry, name string) uint64 {
	var sum uint64
	for _, m := range reg.Gather() {
		if m.Name == name && m.Counter != nil {
			sum += m.Counter.Value()
		}
	}
	return sum
}

// runRouter hosts the stateless shard router: consistent-hash routing
// of fleet requests to the owning shard, health probing, and failover
// retries. SIGINT/SIGTERM drain gracefully, exactly like -serve.
func runRouter(addr string) {
	members, err := parseMembers(*shardsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r, err := shard.NewRouter(shard.RouterConfig{
		Members:     members,
		Retry:       proto.RetryConfig{MaxAttempts: *retries, Wire: wireVersion()},
		IdleTimeout: *idleTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	names := make([]string, len(members))
	for i, m := range members {
		names[i] = m.Name
	}
	fmt.Printf("shard router listening on %s (%d shards: %s)\n",
		ln.Addr(), len(members), strings.Join(names, ", "))

	var msrv *http.Server
	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("metrics on http://%s/metrics (pprof on /debug/pprof/)\n", mln.Addr())
		msrv = &http.Server{Handler: r.DebugMux()}
		go func() {
			if err := msrv.Serve(mln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	exitCode := 0
	go func() {
		defer close(done)
		s := <-sig
		exitCode = drainRouter(os.Stdout, r, s.String(), *drainTimeout)
		if msrv != nil {
			msrv.Shutdown(context.Background())
		}
	}()
	if err := r.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-done
	os.Exit(exitCode)
}

// drainRouter shuts the router down gracefully — stop accepting, let
// in-flight forwards finish, close idle connections — and reports the
// forwarding totals. A failed drain must not exit 0: connections were
// force-closed mid-request.
func drainRouter(w io.Writer, r *shard.Router, sig string, timeout time.Duration) int {
	fmt.Fprintf(w, "%s: draining (up to %s)...\n", sig, timeout)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := r.Shutdown(ctx)
	reg := r.Metrics()
	fmt.Fprintf(w, "forwarded %d requests (%d retries, %d dropped client conns)\n",
		sumCounter(reg, shard.MetricRouterForwards),
		sumCounter(reg, shard.MetricRouterRetries),
		sumCounter(reg, shard.MetricRouterDroppedConns))
	if err != nil {
		fmt.Fprintf(w, "shutdown: %v\n", err)
		return 1
	}
	fmt.Fprintln(w, "router drained clean")
	return 0
}

// fleetBenchFile is the BENCH_fleet.json shape: a description plus
// one entry per recorded run, mirroring BENCH_vm.json.
type fleetBenchFile struct {
	Description string            `json:"description"`
	Entries     []fleetBenchEntry `json:"entries"`
}

type fleetBenchEntry struct {
	Date           string  `json:"date"`
	Go             string  `json:"go"`
	Agents         int     `json:"agents"`
	Programs       int     `json:"programs"`
	DurationS      float64 `json:"duration_s"`
	Accepted       int     `json:"accepted_traces"`
	AcceptedPerSec float64 `json:"accepted_traces_per_s"`
	Reports        int     `json:"reports"`
	ReportsPerMin  float64 `json:"reports_per_min"`
	DirectiveP50Ms float64 `json:"directive_p50_ms"`
	DirectiveP99Ms float64 `json:"directive_p99_ms"`
	Retried        int     `json:"transport_retries"`
}

func writeFleetBench(path string, st fleet.LoadStats) error {
	f := fleetBenchFile{
		Description: "Fleet tier load-generator benchmarks: simulated agents driving the " +
			"full on-demand collection loop (register, heavy-tailed failure reports, " +
			"directive polling, batched uploads, report fetch) against a fleet server " +
			"or shard router. Recorded by scripts/bench.sh fleet via snorlax -loadgen.",
	}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			return fmt.Errorf("%s exists but is not a fleet bench file: %w", path, err)
		}
	}
	f.Entries = append(f.Entries, fleetBenchEntry{
		Date:           time.Now().UTC().Format("2006-01-02"),
		Go:             runtime.Version(),
		Agents:         st.Agents,
		Programs:       st.Programs,
		DurationS:      st.Duration.Seconds(),
		Accepted:       st.Accepted,
		AcceptedPerSec: st.AcceptedPerSec,
		Reports:        st.Reports,
		ReportsPerMin:  st.ReportsPerMin,
		DirectiveP50Ms: float64(st.DirectiveP50) / float64(time.Millisecond),
		DirectiveP99Ms: float64(st.DirectiveP99) / float64(time.Millisecond),
		Retried:        st.Retried,
	})
	out, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// runLoadgen drives the fleet load generator against addr and prints
// the headline numbers; with -bench-out it also records them.
func runLoadgen(addr string) bool {
	var programs []fleet.Program
	var ids []string
	for _, id := range strings.Split(*loadBugs, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		b := lookup(id)
		programs = append(programs, fleet.Program{
			Fail: b.Build(corpus.Variant{Failing: true}).Mod,
			OK:   b.Build(corpus.Variant{Failing: false}).Mod,
		})
		ids = append(ids, id)
	}
	res, err := fleet.RunLoad(fleet.LoadConfig{
		Dial:        func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Agents:      *loadAgents,
		Programs:    programs,
		Concurrency: *loadConc,
		MaxAttempts: *retries,
		Stagger:     *loadWave,
		Wire:        wireVersion(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return false
	}
	st := res.Stats
	fmt.Printf("%d agents x %d programs in %s\n", st.Agents, st.Programs, st.Duration.Round(time.Millisecond))
	fmt.Printf("accepted %d/%d snapshots (%.1f/s), %d reports (%.1f/min)\n",
		st.Accepted, st.Uploaded, st.AcceptedPerSec, st.Reports, st.ReportsPerMin)
	fmt.Printf("directive poll p50=%s p99=%s; %d transport retries\n",
		st.DirectiveP50.Round(time.Microsecond), st.DirectiveP99.Round(time.Microsecond), st.Retried)
	ok := true
	for i, c := range res.Cases {
		status := "published"
		if c.Diagnosis == nil {
			status = "NO REPORT"
			ok = false
		}
		fmt.Printf("  %-16s case %d (tenant %.12s…): %d agents, %d failure reports, %d accepted — %s\n",
			ids[i], c.Case, c.Tenant, c.Agents, c.FailureReports, c.Accepted, status)
	}
	if *benchOut != "" {
		if err := writeFleetBench(*benchOut, st); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return false
		}
		fmt.Printf("recorded to %s\n", *benchOut)
	}
	return ok
}
