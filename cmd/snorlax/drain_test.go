package main

// The drain exit code is the supervisor contract: a store flush error
// at shutdown means acknowledged state may not be on disk, and the
// process must not exit 0 and look healthy.

import (
	"errors"
	"testing"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/proto"
	"snorlax/internal/store"
)

// failFlushStore accepts every append but fails the final flush, the
// shape of a disk going bad between the last sync and the drain.
type failFlushStore struct{ flushErr error }

func (f *failFlushStore) Append(*store.Record) error { return nil }
func (f *failFlushStore) Flush() error               { return f.flushErr }
func (f *failFlushStore) Close() error               { return nil }
func (f *failFlushStore) Stats() store.Stats         { return store.Stats{} }

func newDrainServer(t *testing.T) *proto.Server {
	t.Helper()
	mod := corpus.ByID("pbzip2-1").Build(corpus.Variant{Failing: true}).Mod
	return proto.NewServer(core.NewServer(mod))
}

func TestDrainExitCode(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		ps := newDrainServer(t)
		ps.Store = &failFlushStore{}
		if code := drain(ps, time.Second); code != 0 {
			t.Errorf("clean drain exited %d, want 0", code)
		}
	})
	t.Run("flush-error", func(t *testing.T) {
		ps := newDrainServer(t)
		ps.Store = &failFlushStore{flushErr: errors.New("disk on fire")}
		if code := drain(ps, time.Second); code != 1 {
			t.Errorf("drain with a failing store flush exited %d, want 1", code)
		}
	})
}
