package main

// The drain exit code is the supervisor contract: a store flush error
// at shutdown means acknowledged state may not be on disk, and the
// process must not exit 0 and look healthy.

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"snorlax/internal/core"
	"snorlax/internal/corpus"
	"snorlax/internal/proto"
	"snorlax/internal/shard"
	"snorlax/internal/store"
)

// failFlushStore accepts every append but fails the final flush, the
// shape of a disk going bad between the last sync and the drain.
type failFlushStore struct{ flushErr error }

func (f *failFlushStore) Append(*store.Record) error { return nil }
func (f *failFlushStore) Flush() error               { return f.flushErr }
func (f *failFlushStore) Close() error               { return nil }
func (f *failFlushStore) Stats() store.Stats         { return store.Stats{} }
func (f *failFlushStore) Err() error                 { return nil }

func newDrainServer(t *testing.T) *proto.Server {
	t.Helper()
	mod := corpus.ByID("pbzip2-1").Build(corpus.Variant{Failing: true}).Mod
	return proto.NewServer(core.NewServer(mod))
}

func TestDrainExitCode(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		ps := newDrainServer(t)
		ps.Store = &failFlushStore{}
		if code := drain(ps, time.Second); code != 0 {
			t.Errorf("clean drain exited %d, want 0", code)
		}
	})
	t.Run("flush-error", func(t *testing.T) {
		ps := newDrainServer(t)
		ps.Store = &failFlushStore{flushErr: errors.New("disk on fire")}
		if code := drain(ps, time.Second); code != 1 {
			t.Errorf("drain with a failing store flush exited %d, want 1", code)
		}
	})
}

// TestRouteDrainGolden pins the router's SIGINT/SIGTERM drain output:
// the message sequence an operator (and the supervisor's logs) see
// when the router is asked to go away. The router is stateless and
// idle here, so the output is fully deterministic.
func TestRouteDrainGolden(t *testing.T) {
	shardLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shardLn.Close()
	ps := newDrainServer(t)
	go ps.Serve(shardLn)
	defer ps.Shutdown(t.Context())

	r, err := shard.NewRouter(shard.RouterConfig{
		Members: []shard.Member{{Name: "shard-0", Addr: shardLn.Addr().String()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- r.Serve(ln) }()

	var buf bytes.Buffer
	if code := drainRouter(&buf, r, "terminated", 5*time.Second); code != 0 {
		t.Fatalf("idle router drain exited %d, want 0\n%s", code, buf.String())
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve after drain: %v", err)
	}
	if err := r.Ready(); err == nil {
		t.Error("drained router still reports ready")
	}
	checkGolden(t, "route-drain.golden", buf.String())
}
