package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"snorlax/internal/fleet"
	"snorlax/internal/shard"
)

// TestParseMembers pins the -shards flag grammar: every operator-typed
// spelling of a member list must land on the same Member values.
func TestParseMembers(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec string
		want []shard.Member
		err  bool
	}{
		{
			name: "named",
			spec: "s0=127.0.0.1:7101,s1=127.0.0.1:7102",
			want: []shard.Member{
				{Name: "s0", Addr: "127.0.0.1:7101"},
				{Name: "s1", Addr: "127.0.0.1:7102"},
			},
		},
		{
			name: "bare addr names itself",
			spec: "127.0.0.1:7101",
			want: []shard.Member{{Name: "127.0.0.1:7101", Addr: "127.0.0.1:7101"}},
		},
		{
			name: "health url",
			spec: "s0=127.0.0.1:7101;http://127.0.0.1:7201/readyz",
			want: []shard.Member{{
				Name:      "s0",
				Addr:      "127.0.0.1:7101",
				HealthURL: "http://127.0.0.1:7201/readyz",
			}},
		},
		{
			name: "whitespace and empty entries skipped",
			spec: " s0=127.0.0.1:7101 , ,s1=127.0.0.1:7102,",
			want: []shard.Member{
				{Name: "s0", Addr: "127.0.0.1:7101"},
				{Name: "s1", Addr: "127.0.0.1:7102"},
			},
		},
		{name: "empty spec", spec: "", err: true},
		{name: "name without address", spec: "s0=", err: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseMembers(tc.spec)
			if tc.err {
				if err == nil {
					t.Fatalf("parseMembers(%q) = %v, want error", tc.spec, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseMembers(%q): %v", tc.spec, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("parseMembers(%q) = %+v, want %+v", tc.spec, got, tc.want)
			}
		})
	}
}

// TestWriteFleetBench pins the BENCH_fleet.json discipline: a fresh
// file gets the description plus one entry, a second run appends
// rather than overwrites, and an unrelated file is refused instead of
// clobbered.
func TestWriteFleetBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_fleet.json")
	st := fleet.LoadStats{
		Agents:         100,
		Programs:       2,
		Duration:       2 * time.Second,
		Uploaded:       40,
		Accepted:       20,
		AcceptedPerSec: 10,
		Reports:        2,
		ReportsPerMin:  60,
		DirectiveP50:   5 * time.Millisecond,
		DirectiveP99:   20 * time.Millisecond,
	}
	if err := writeFleetBench(path, st); err != nil {
		t.Fatal(err)
	}
	if err := writeFleetBench(path, st); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f fleetBenchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("recorded file is not valid JSON: %v", err)
	}
	if f.Description == "" {
		t.Error("recorded file has no description")
	}
	if len(f.Entries) != 2 {
		t.Fatalf("two runs recorded %d entries, want 2", len(f.Entries))
	}
	e := f.Entries[1]
	if e.Agents != 100 || e.Accepted != 20 || e.Reports != 2 {
		t.Errorf("entry = %+v, want agents=100 accepted=20 reports=2", e)
	}
	if e.DirectiveP99Ms != 20 {
		t.Errorf("DirectiveP99Ms = %v, want 20", e.DirectiveP99Ms)
	}
	if e.Go == "" || e.Date == "" {
		t.Errorf("entry missing go/date stamps: %+v", e)
	}

	junk := filepath.Join(t.TempDir(), "notes.json")
	if err := os.WriteFile(junk, []byte("not a bench file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeFleetBench(junk, st); err == nil {
		t.Error("writeFleetBench clobbered a non-bench file without error")
	}
}
