// Command irvm runs a textual IR program on the simulated machine.
//
// Usage:
//
//	irvm [-seed N] [-trace] [-watch pc,pc,...] program.ir
//
// It prints the program's output, the failure (if any), and with
// -trace the control-flow tracer's packet statistics.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"snorlax/internal/ir"
	"snorlax/internal/pt"
	"snorlax/internal/racedet"
	"snorlax/internal/vm"
	"snorlax/internal/vm/bytecode"
)

var (
	seed     = flag.Int64("seed", 1, "scheduler seed")
	trace    = flag.Bool("trace", false, "run under the simulated hardware tracer and print stats")
	watch    = flag.String("watch", "", "comma-separated PCs to timestamp")
	maxSteps = flag.Int64("maxsteps", 0, "instruction budget (0 = default)")
	dump     = flag.Bool("dump", false, "print the parsed program with PCs and exit")
	races    = flag.Bool("races", false, "run under the lockset race detector and report races")
	engine   = flag.String("engine", "bytecode", "execution engine: bytecode or treewalk")
	disasm   = flag.Bool("disasm", false, "print the compiled bytecode listing and exit")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: irvm [flags] program.ir")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	mod, err := ir.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if *dump {
		mod.Instrs(func(in ir.Instr) {
			fmt.Printf("%5d  %-40s %s\n", in.PC(), in, in.Block())
		})
		return
	}
	if *disasm {
		prog, err := bytecode.Compile(mod)
		if err != nil {
			fatal(err)
		}
		fmt.Print(prog.Disasm())
		return
	}
	var eng vm.Engine
	switch *engine {
	case "bytecode":
		eng = vm.EngineBytecode
	case "treewalk":
		eng = vm.EngineTreeWalk
	default:
		fatal(fmt.Errorf("bad -engine %q (want bytecode or treewalk)", *engine))
	}

	if *races {
		found, res := racedet.Detect(mod, vm.Config{Seed: *seed, MaxSteps: *maxSteps, Engine: eng})
		for _, r := range found {
			a, b := mod.InstrAt(r.First), mod.InstrAt(r.Second)
			fmt.Printf("race: %-36s [%s]\n  vs: %-36s [%s]\n", a, a.Block(), b, b.Block())
		}
		fmt.Printf("-- %d races detected\n", len(found))
		if res.Failed() {
			fmt.Printf("-- run also FAILED: %v\n", res.Failure)
		}
		if len(found) > 0 {
			os.Exit(1)
		}
		return
	}

	cfg := vm.Config{Seed: *seed, MaxSteps: *maxSteps, Engine: eng}
	var enc *pt.Encoder
	if *trace {
		enc = pt.NewEncoder(pt.Config{})
		cfg.Sink = enc
	}
	if *watch != "" {
		cfg.WatchPCs = map[ir.PC]bool{}
		for _, part := range strings.Split(*watch, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad -watch pc %q", part))
			}
			cfg.WatchPCs[ir.PC(n)] = true
		}
	}

	res := vm.Run(mod, cfg)
	for _, line := range res.Output {
		fmt.Println(line)
	}
	fmt.Printf("-- %d steps, %d branches, %d threads, virtual time %.3fms\n",
		res.Steps, res.Branches, res.MaxThreads, float64(res.Time)/1e6)
	for _, ev := range res.Watch {
		fmt.Printf("-- watch pc=%d thread=%d t=%dns\n", ev.PC, ev.Thread, ev.Time)
	}
	if enc != nil {
		st := enc.Stats()
		fmt.Printf("-- trace: %d bytes, timing fraction %.0f%%, packets %v\n",
			st.Bytes, 100*st.TimingFraction(), st.Packets)
	}
	if res.Failed() {
		fmt.Printf("-- FAILURE: %v\n", res.Failure)
		in := mod.InstrAt(res.Failure.PC)
		fmt.Printf("--   at: %s [%s]\n", in, in.Block())
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "irvm:", err)
	os.Exit(1)
}
