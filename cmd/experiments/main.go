// Command experiments regenerates every table and figure of the
// Snorlax paper's evaluation on the simulated substrate.
//
// Usage:
//
//	experiments [table1|table2|table3|hypothesis|accuracy|fig7|fig8|fig9|table4|latency|tracestats|all]
//
// With no argument, "all" runs. Absolute numbers reflect the
// simulator, not the authors' hardware; EXPERIMENTS.md records the
// shape comparison against the paper.
package main

import (
	"flag"
	"fmt"
	"os"

	"snorlax/internal/corpus"
	"snorlax/internal/experiments"
	"snorlax/internal/pattern"
)

var (
	runs    = flag.Int("runs", 10, "reproductions per bug for the hypothesis tables")
	threads = flag.Int("threads", 2, "application threads for figure 8")
	ops     = flag.Int("ops", 14, "operations per thread in throughput workloads")
	reps    = flag.Int("reps", 3, "seeds per measurement")
)

func main() {
	flag.Parse()
	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}
	run := func(name string, fn func()) {
		if what == name || what == "all" {
			fn()
		}
	}

	run("table1", table1)
	run("table2", table2)
	run("table3", table3)
	run("hypothesis", hypothesis)
	run("accuracy", accuracy)
	run("fig7", fig7)
	run("fig8", fig8)
	run("fig9", fig9)
	run("table4", table4)
	run("latency", latency)
	run("tracestats", tracestats)

	switch what {
	case "table1", "table2", "table3", "hypothesis", "accuracy", "fig7",
		"fig8", "fig9", "table4", "latency", "tracestats", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", what)
		os.Exit(2)
	}
}

func table1() {
	rows := experiments.HypothesisTable(pattern.KindDeadlock, *runs)
	fmt.Print(experiments.FormatHypothesisTable(
		"Table 1: time elapsed between deadlock lock-acquisition attempts (avg over runs)", rows))
	fmt.Println()
}

func table2() {
	rows := experiments.HypothesisTable(pattern.KindOrderViolation, *runs)
	fmt.Print(experiments.FormatHypothesisTable(
		"Table 2: time elapsed between order-violation accesses", rows))
	fmt.Println()
}

func table3() {
	rows := experiments.HypothesisTable(pattern.KindAtomicityViolation, *runs)
	fmt.Print(experiments.FormatHypothesisTable(
		"Table 3: times elapsed between atomicity-violation accesses (ΔT1, ΔT2)", rows))
	fmt.Println()
}

func hypothesis() {
	sum := experiments.Hypothesis(*runs)
	fmt.Println("Coarse interleaving hypothesis (§3.3 summary):")
	fmt.Printf("  bugs studied:        %d\n", sum.Bugs)
	fmt.Printf("  shortest gap:        %.0f µs (paper: 91 µs)\n", sum.MinUS)
	fmt.Printf("  per-bug averages:    %.0f – %.0f µs (paper: 154 – 3505 µs)\n", sum.MinAvgUS, sum.MaxAvgUS)
	fmt.Printf("  vs ~1ns recording:   %.1f orders of magnitude (paper: ~5)\n\n", sum.GranularityOrders)
}

func accuracy() {
	fmt.Println("Accuracy (§6.1) on the 11-bug evaluation set:")
	fmt.Print(experiments.FormatAccuracy(experiments.Accuracy(corpus.EvalSet())))
	fmt.Println()
	fmt.Println("Accuracy on the full 54-bug corpus:")
	fmt.Print(experiments.FormatAccuracy(experiments.Accuracy(corpus.All())))
	fmt.Println()
}

func fig7() {
	rows, geoScope, geoRank := experiments.Fig7(corpus.EvalSet())
	fmt.Println("Figure 7: per-stage contribution to narrowing the analysis:")
	fmt.Print(experiments.FormatFig7(rows, geoScope, geoRank))
	fmt.Println()
}

func fig8() {
	rows, avg := experiments.Fig8(*threads, *ops, *reps)
	fmt.Println("Figure 8: runtime overhead of control-flow tracing:")
	fmt.Print(experiments.FormatFig8(rows, avg))
	fmt.Println()
}

func fig9() {
	rows := experiments.Fig9([]int{2, 4, 8, 16, 32}, *ops/2)
	fmt.Println("Figure 9: overhead scalability, Snorlax vs Gist (conflated across systems):")
	fmt.Print(experiments.FormatFig9(rows))
	fmt.Println()
}

func table4() {
	rows, geo := experiments.Table4(*reps)
	fmt.Println("Table 4: server-side analysis time, hybrid vs whole-program static analysis:")
	fmt.Print(experiments.FormatTable4(rows, geo))
	fmt.Println()
}

func latency() {
	fmt.Println("Diagnosis latency (§6.3), Snorlax vs Gist:")
	fmt.Print(experiments.FormatLatency(experiments.Latency()))
	fmt.Println()
}

func tracestats() {
	fmt.Println("Trace statistics (§5):")
	fmt.Print(experiments.FormatTraceStats(experiments.TraceStats("mysql")))
	fmt.Println()
}
