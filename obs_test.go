package snorlax_test

// Observability surface tests for the public API: the metrics
// endpoint a deployment scrapes, the text rendering, and the hermetic
// budget check that the metrics layer stays within its overhead bar.

import (
	"bytes"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	snorlax "snorlax"
	"snorlax/internal/core"
)

func TestPublicMetricsSurface(t *testing.T) {
	failProg := uafProgram(true)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srv, err := snorlax.NewServer(failProg, snorlax.ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	rd, err := snorlax.Dial("tcp", ln.Addr().String(), failProg)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	failing := failProg.Run(snorlax.RunOptions{Seed: 1})
	if _, err := rd.ReportFailure(failing); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Diagnose(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := srv.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE snorlax_stage_seconds histogram",
		`snorlax_stage_seconds_count{stage="total"} 1`,
		"snorlax_diagnoses_completed_total 1",
		"snorlax_pointsto_cache_misses_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("WriteMetrics output is missing %q", want)
		}
	}

	mux := srv.MetricsMux()
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /metrics = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if got := rr.Body.String(); !strings.Contains(got, "snorlax_diagnoses_completed_total 1") {
		t.Error("HTTP /metrics page disagrees with WriteMetrics")
	}
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rr.Code != 200 {
		t.Errorf("GET /debug/pprof/ = %d", rr.Code)
	}
}

// TestObservabilityOverheadBudget is the hermetic form of
// BenchmarkObservabilityOverhead: the same 12-trace diagnosis with
// stage histograms on and off, interleaved, min-of-samples on both
// sides to shed scheduler noise, asserting the <5% overhead bar the
// observability layer is designed to.
func TestObservabilityOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	failInst, rep, oks := manySuccessReports(t)
	mkServer := func(disabled bool) *core.Server {
		srv := core.NewServer(failInst.Mod)
		srv.MaxSuccessTraces = len(oks)
		srv.DisableObs = disabled
		if _, err := srv.Diagnose(rep, oks); err != nil { // warm the cache
			t.Fatal(err)
		}
		return srv
	}
	on, off := mkServer(false), mkServer(true)
	sample := func(srv *core.Server) time.Duration {
		const iters = 3
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := srv.Diagnose(rep, oks); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / iters
	}
	minOn, minOff := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < 6; i++ {
		if d := sample(off); d < minOff {
			minOff = d
		}
		if d := sample(on); d < minOn {
			minOn = d
		}
	}
	overhead := 100 * (float64(minOn) - float64(minOff)) / float64(minOff)
	t.Logf("diagnosis: obs on %v, obs off %v, overhead %.2f%%", minOn, minOff, overhead)
	if overhead > 5 {
		t.Errorf("observability overhead %.2f%% exceeds the 5%% budget (on %v, off %v)",
			overhead, minOn, minOff)
	}
}
