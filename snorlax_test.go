package snorlax_test

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	snorlax "snorlax"
)

// uafProgram returns the use-after-free demo in both delay variants.
func uafProgram(failing bool) *snorlax.Program {
	consumerDelay, mainDelay := int64(300_000), int64(100_000)
	if !failing {
		consumerDelay, mainDelay = 50_000, 400_000
	}
	return snorlax.MustParseProgram(fmt.Sprintf(`
module demo
struct Job {
  payload: int
}
global queue: *Job

func consumer() {
entry:
  sleep %d
  %%j = load @queue
  %%p = fieldaddr %%j, payload
  %%v = load %%p
  ret
}

func main() {
entry:
  %%j = new Job
  store %%j, @queue
  %%t = spawn consumer()
  sleep %d
  store null:*Job, @queue
  join %%t
  ret
}
`, consumerDelay, mainDelay))
}

// collectSuccesses gathers n triggered successful runs.
func collectSuccesses(t *testing.T, prog *snorlax.Program, trigger snorlax.PC, n int) []*snorlax.Execution {
	t.Helper()
	var out []*snorlax.Execution
	for seed := int64(1); len(out) < n && seed < int64(n*5); seed++ {
		e := prog.Run(snorlax.RunOptions{Seed: seed, TriggerPC: trigger})
		if !e.Failed() && e.Triggered() {
			out = append(out, e)
		}
	}
	if len(out) != n {
		t.Fatalf("collected %d/%d successful runs", len(out), n)
	}
	return out
}

func TestPublicAPIWorkflow(t *testing.T) {
	failProg := uafProgram(true)
	okProg := uafProgram(false)

	failing := failProg.Run(snorlax.RunOptions{Seed: 1})
	if !failing.Failed() {
		t.Fatal("expected failure")
	}
	if failing.Deadlocked() {
		t.Fatal("crash misreported as deadlock")
	}
	if !strings.Contains(failing.FailureMessage(), "null") {
		t.Errorf("failure message = %q", failing.FailureMessage())
	}

	successes := collectSuccesses(t, okProg, failing.FailurePC(), 10)
	report, err := snorlax.NewDiagnoser(failProg).Diagnose(failing, successes)
	if err != nil {
		t.Fatal(err)
	}
	if report.Kind != snorlax.OrderViolation || report.Pattern != "WR" {
		t.Errorf("diagnosed %v/%s", report.Kind, report.Pattern)
	}
	if report.F1 != 1.0 || !report.Unique {
		t.Errorf("F1 = %f unique = %v", report.F1, report.Unique)
	}
	if len(report.Events) != 2 {
		t.Fatalf("events = %+v", report.Events)
	}
	if !strings.Contains(report.Events[0].Instr, "store null") {
		t.Errorf("event 1 = %q, want the null store", report.Events[0].Instr)
	}
	if report.ScopeReduction <= 1 {
		t.Errorf("scope reduction = %f", report.ScopeReduction)
	}
	text := report.Format()
	if !strings.Contains(text, "root cause: order-violation") {
		t.Errorf("Format() = %q", text)
	}
}

func TestProgramRoundTrip(t *testing.T) {
	p := uafProgram(true)
	if p.NumInstrs() == 0 {
		t.Fatal("no instructions")
	}
	p2, err := snorlax.ParseProgram(p.Text())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if p2.NumInstrs() != p.NumInstrs() {
		t.Error("text round trip changed the program")
	}
}

func TestParseError(t *testing.T) {
	if _, err := snorlax.ParseProgram("not a program"); err == nil {
		t.Error("bad source accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParseProgram did not panic")
		}
	}()
	snorlax.MustParseProgram("nope")
}

func TestExecutionAccessors(t *testing.T) {
	p := snorlax.MustParseProgram(`
module out
func main() {
entry:
  print 41, 1
  ret
}
`)
	e := p.Run(snorlax.RunOptions{Seed: 1})
	if e.Failed() {
		t.Fatal(e.FailureMessage())
	}
	if len(e.Output()) != 1 || e.Output()[0] != "41 1" {
		t.Errorf("output = %v", e.Output())
	}
	if e.VirtualTime() <= 0 {
		t.Error("no virtual time")
	}
	if e.FailurePC() != snorlax.NoPC || e.FailureMessage() != "" {
		t.Error("successful run reports failure state")
	}
}

func TestDiagnoseRejectsSuccessfulRun(t *testing.T) {
	p := uafProgram(false)
	e := p.Run(snorlax.RunOptions{Seed: 1})
	if e.Failed() {
		t.Fatal("unexpected failure")
	}
	if _, err := snorlax.NewDiagnoser(p).Diagnose(e, nil); err == nil {
		t.Error("Diagnose accepted a successful execution")
	}
}

func TestRemoteDiagnosisOverTCP(t *testing.T) {
	failProg := uafProgram(true)
	okProg := uafProgram(false)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go snorlax.Serve(ln, failProg)

	rd, err := snorlax.Dial("tcp", ln.Addr().String(), failProg)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	failing := failProg.Run(snorlax.RunOptions{Seed: 1})
	trigger, err := rd.ReportFailure(failing)
	if err != nil {
		t.Fatal(err)
	}
	for _, ok := range collectSuccesses(t, okProg, trigger, 10) {
		if err := rd.SendSuccess(ok); err != nil {
			t.Fatal(err)
		}
	}
	report, err := rd.Diagnose()
	if err != nil {
		t.Fatal(err)
	}
	if report.Kind != snorlax.OrderViolation || report.F1 != 1.0 {
		t.Errorf("remote report = %+v", report)
	}
}

// TestTriggerAtPCZero is the regression test for the RunOptions
// zero-value footgun: PC 0 is a real instruction, and WithTrigger (or
// HasTrigger) must be able to arm a snapshot there, while the legacy
// zero value keeps meaning "untriggered".
func TestTriggerAtPCZero(t *testing.T) {
	p := snorlax.MustParseProgram(`
module t0
global x: int

func main() {
entry:
  %v = load @x
  store %v, @x
  ret
}
`)
	// The module's first instruction is PC 0 and main executes it.
	plain := p.Run(snorlax.RunOptions{Seed: 1})
	if plain.Failed() {
		t.Fatal(plain.FailureMessage())
	}
	if plain.Triggered() || plain.Snapshot() != nil {
		t.Error("zero-value RunOptions armed a trigger")
	}

	legacy := p.Run(snorlax.RunOptions{Seed: 1, TriggerPC: 0})
	if legacy.Triggered() {
		t.Error("TriggerPC: 0 without HasTrigger armed a trigger (breaks zero-value compatibility)")
	}

	armed := p.Run(snorlax.RunOptions{Seed: 1}.WithTrigger(0))
	if !armed.Triggered() {
		t.Fatal("WithTrigger(0) did not fire at PC 0")
	}
	if armed.Snapshot() == nil {
		t.Error("trigger at PC 0 captured no snapshot")
	}

	explicit := p.Run(snorlax.RunOptions{Seed: 1, TriggerPC: 0, HasTrigger: true})
	if !explicit.Triggered() {
		t.Error("HasTrigger with TriggerPC 0 did not fire")
	}

	none := p.Run(snorlax.RunOptions{Seed: 1, TriggerPC: snorlax.NoPC, HasTrigger: true})
	if none.Triggered() {
		t.Error("HasTrigger with NoPC armed a trigger")
	}

	// Non-zero PCs keep working through the plain field.
	nonzero := p.Run(snorlax.RunOptions{Seed: 1, TriggerPC: 1})
	if !nonzero.Triggered() {
		t.Error("TriggerPC: 1 did not fire")
	}
}

// TestServeConfiguredStatus covers the public concurrency knobs and
// the server status round trip.
func TestServeConfiguredStatus(t *testing.T) {
	failProg := uafProgram(true)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go snorlax.ServeConfigured(ln, failProg, snorlax.ServeConfig{
		Workers:                2,
		MaxConcurrentDiagnoses: 3,
	})

	rd, err := snorlax.Dial("tcp", ln.Addr().String(), failProg)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	failing := failProg.Run(snorlax.RunOptions{Seed: 1})
	if _, err := rd.ReportFailure(failing); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Diagnose(); err != nil {
		t.Fatal(err)
	}
	st, err := rd.ServerStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 2 || st.MaxConcurrent != 3 {
		t.Errorf("knobs = workers %d / max %d, want 2/3", st.Workers, st.MaxConcurrent)
	}
	if st.CompletedDiagnoses != 1 {
		t.Errorf("completed = %d, want 1", st.CompletedDiagnoses)
	}
	if st.CacheMisses != 1 {
		t.Errorf("cache misses = %d, want 1", st.CacheMisses)
	}
	if st.OpenConns != 1 {
		t.Errorf("open conns = %d, want 1", st.OpenConns)
	}
}

// TestHardenedServerAndRetryingClient covers the robustness surface
// end to end through the public API: a configured server, a retrying
// client, a corrupt success trace absorbed by degraded-mode
// diagnosis, and a graceful drain.
func TestHardenedServerAndRetryingClient(t *testing.T) {
	failProg := uafProgram(true)
	okProg := uafProgram(false)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := snorlax.NewServer(failProg, snorlax.ServeConfig{
		IdleTimeout:  time.Minute,
		WriteTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()

	rd := snorlax.DialRetrying("tcp", ln.Addr().String(), failProg,
		snorlax.RetryConfig{BaseDelay: time.Millisecond})
	defer rd.Close()

	failing := failProg.Run(snorlax.RunOptions{Seed: 1})
	trigger, err := rd.ReportFailure(failing)
	if err != nil {
		t.Fatal(err)
	}
	successes := collectSuccesses(t, okProg, trigger, 6)
	// Ruin one trace's rings: still a valid upload on the wire, but
	// undecodable — the server must drop it, not fail the diagnosis.
	ruined := successes[2].Snapshot()
	for tid, th := range ruined.Threads {
		for i := range th.Data {
			th.Data[i] = 0xFF
		}
		ruined.Threads[tid] = th
	}
	for _, ok := range successes {
		if err := rd.SendSuccess(ok); err != nil {
			t.Fatal(err)
		}
	}
	report, err := rd.Diagnose()
	if err != nil {
		t.Fatal(err)
	}
	if report.DroppedSuccesses != 1 || report.SuccessTraces != 5 {
		t.Errorf("dropped %d / used %d success traces, want 1/5",
			report.DroppedSuccesses, report.SuccessTraces)
	}
	if report.Kind != snorlax.OrderViolation {
		t.Errorf("degraded diagnosis changed the verdict: %v", report.Kind)
	}
	if rd.Retries() != 0 {
		t.Errorf("Retries = %d on a clean network, want 0", rd.Retries())
	}
	st, err := rd.ServerStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedSuccesses != 1 {
		t.Errorf("server DroppedSuccesses = %d, want 1", st.DroppedSuccesses)
	}
	rd.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	if err := <-served; err != nil {
		t.Errorf("Serve returned %v after Shutdown, want nil", err)
	}
	if n := srv.Status().OpenConns; n != 0 {
		t.Errorf("OpenConns = %d after drain, want 0", n)
	}
}

// TestDialRetryingGivesUp: a dead address surfaces as an error after
// the attempt budget, not a hang — and the retries are counted.
func TestDialRetryingGivesUp(t *testing.T) {
	rd := snorlax.DialRetrying("tcp", "127.0.0.1:1", uafProgram(true),
		snorlax.RetryConfig{MaxAttempts: 2, BaseDelay: time.Millisecond})
	defer rd.Close()
	if _, err := rd.ServerStatus(); err == nil {
		t.Fatal("operation succeeded against a dead address")
	}
	if rd.Retries() != 1 {
		t.Errorf("Retries = %d, want 1 (2 attempts = 1 retry)", rd.Retries())
	}
}

func TestBugKindStrings(t *testing.T) {
	if snorlax.Deadlock.String() != "deadlock" ||
		snorlax.OrderViolation.String() != "order violation" ||
		snorlax.AtomicityViolation.String() != "atomicity violation" {
		t.Error("BugKind strings wrong")
	}
}

func TestDetectRaces(t *testing.T) {
	racy := snorlax.MustParseProgram(`
module racy
global total: int
func bump() {
entry:
  %v = load @total
  %v2 = add %v, 1
  store %v2, @total
  ret
}
func main() {
entry:
  %a = spawn bump()
  %b = spawn bump()
  join %a
  join %b
  ret
}
`)
	races := racy.DetectRaces(snorlax.RunOptions{Seed: 1})
	if len(races) == 0 {
		t.Fatal("no races on the unsynchronized counter")
	}
	for _, r := range races {
		if r.First == "" || r.Second == "" || r.String() == "" {
			t.Errorf("incomplete report: %+v", r)
		}
	}

	clean := snorlax.MustParseProgram(`
module clean
global mu: mutex
global total: int
func bump() {
entry:
  lock @mu
  %v = load @total
  %v2 = add %v, 1
  store %v2, @total
  unlock @mu
  ret
}
func main() {
entry:
  %a = spawn bump()
  %b = spawn bump()
  join %a
  join %b
  ret
}
`)
	if races := clean.DetectRaces(snorlax.RunOptions{Seed: 1}); len(races) != 0 {
		t.Fatalf("false positives on the locked counter: %v", races)
	}
}

func TestRecordReplayFacade(t *testing.T) {
	prog := uafProgram(true)
	recorded, log := prog.RunRecorded(snorlax.RunOptions{Seed: 1})
	if !recorded.Failed() {
		t.Fatal("recording should capture the failure")
	}
	if log.Accesses() == 0 {
		t.Fatal("empty log")
	}
	for seed := int64(9); seed < 12; seed++ {
		e, err := prog.RunReplay(snorlax.RunOptions{Seed: seed}, log)
		if err != nil {
			t.Fatal(err)
		}
		if !e.Failed() || e.FailurePC() != recorded.FailurePC() {
			t.Errorf("seed %d: replay failure pc %d, recorded %d", seed, e.FailurePC(), recorded.FailurePC())
		}
	}
}
