package snorlax_test

// Public-API durability tests: a StateDir-configured server survives a
// restart with its published reports intact, and the durable store's
// default sync policy stays within its overhead budget on the full
// fleet end-to-end path.

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	snorlax "snorlax"
)

// runPublicFleet serves prog on a fresh listener with cfg and drives
// the built-in fleet simulation against it, returning the server, the
// result, and the fleet's wall time.
func runPublicFleet(t *testing.T, failProg, okProg *snorlax.Program, cfg snorlax.ServeConfig) (*snorlax.Server, *snorlax.FleetResult, time.Duration) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv, err := snorlax.NewServer(failProg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	start := time.Now()
	res, err := snorlax.RunFleet("tcp", ln.Addr().String(), failProg, okProg, snorlax.FleetConfig{Clients: 4})
	if err != nil {
		t.Fatal(err)
	}
	return srv, res, time.Since(start)
}

func shutdownPublic(t *testing.T, srv *snorlax.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestServerDurabilityAcrossRestart exercises the whole public
// surface: a StateDir server runs a fleet case to publication, shuts
// down cleanly, and a second server over the same directory re-serves
// the identical report without re-running diagnosis.
func TestServerDurabilityAcrossRestart(t *testing.T) {
	failProg, okProg := uafProgram(true), uafProgram(false)
	stateDir := t.TempDir()

	srv, res, _ := runPublicFleet(t, failProg, okProg,
		snorlax.ServeConfig{StateDir: stateDir, SyncPolicy: snorlax.SyncAlways})
	if res.Report == nil {
		t.Fatal("fleet published no report")
	}
	shutdownPublic(t, srv)
	st := srv.Store()
	if st.AppendedRecords == 0 || st.AppendedBytes == 0 || st.Fsyncs == 0 {
		t.Fatalf("store stats after a durable run: %+v", st)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srv2, err := snorlax.NewServer(failProg, snorlax.ServeConfig{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(ln)
	t.Cleanup(func() { shutdownPublic(t, srv2) })

	fc, err := snorlax.DialFleet("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	recovered, done, err := fc.FetchReport(failProg, res.Tenant, res.Case, res.TriggerPC)
	if err != nil {
		t.Fatal(err)
	}
	if !done || recovered == nil {
		t.Fatalf("case %d not re-served after restart (done=%v)", res.Case, done)
	}
	if recovered.Kind != res.Report.Kind || recovered.Pattern != res.Report.Pattern ||
		recovered.F1 != res.Report.F1 {
		t.Errorf("recovered report diverges: %v (%s, F1=%.3f) vs %v (%s, F1=%.3f)",
			recovered.Kind, recovered.Pattern, recovered.F1,
			res.Report.Kind, res.Report.Pattern, res.Report.F1)
	}
	if n := srv2.Status().CompletedDiagnoses; n != 0 {
		t.Errorf("restarted server ran %d diagnoses to re-serve a stored report", n)
	}
}

// TestServerRejectsBadStateDir pins the NewServer error path: an
// unusable state directory must fail loudly at startup, not serve with
// silently disabled durability.
func TestServerRejectsBadStateDir(t *testing.T) {
	if _, err := snorlax.NewServer(uafProgram(true),
		snorlax.ServeConfig{StateDir: "/proc/definitely/not/writable"}); err == nil {
		t.Fatal("NewServer accepted an unusable state directory")
	}
}

// spinUAFProgram is the budget-test workload: the same use-after-free
// as uafProgram, with a busy loop in the consumer so each run costs
// real interpreter time. The tiny demo program finishes in microseconds
// and would make fixed log costs look like a large relative regression;
// a realistic workload amortizes them. The loop's 10k ticks are small
// against the 50k+ sleeps, so the race's interleaving is unchanged.
func spinUAFProgram(failing bool) *snorlax.Program {
	consumerDelay, mainDelay := int64(300_000), int64(100_000)
	if !failing {
		consumerDelay, mainDelay = 50_000, 400_000
	}
	return snorlax.MustParseProgram(fmt.Sprintf(`
module demo
struct Job {
  payload: int
}
struct Ctr {
  n: int
}
global queue: *Job

func spin() {
entry:
  %%c = new Ctr
  %%p = fieldaddr %%c, n
  br loop
loop:
  %%v = load %%p
  %%v2 = add %%v, 1
  store %%v2, %%p
  %%done = eq %%v2, 2000
  condbr %%done, out, loop
out:
  ret
}

func consumer() {
entry:
  call spin()
  sleep %d
  %%j = load @queue
  %%p = fieldaddr %%j, payload
  %%v = load %%p
  ret
}

func main() {
entry:
  %%j = new Job
  store %%j, @queue
  %%t = spawn consumer()
  sleep %d
  store null:*Job, @queue
  join %%t
  ret
}
`, consumerDelay, mainDelay))
}

// TestStoreOverheadBudget is the hermetic durability-cost check: the
// full fleet e2e with the default interval-sync WAL must stay within
// 10% of the in-memory server's wall time. Interleaved min-of-samples
// on both sides sheds scheduler noise, exactly like the observability
// budget test.
func TestStoreOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	failProg, okProg := spinUAFProgram(true), spinUAFProgram(false)
	sample := func(durable bool) time.Duration {
		cfg := snorlax.ServeConfig{}
		if durable {
			cfg.StateDir = t.TempDir()
			cfg.SyncPolicy = snorlax.SyncInterval
		}
		srv, _, d := runPublicFleet(t, failProg, okProg, cfg)
		shutdownPublic(t, srv)
		return d
	}
	// Warm both paths (listener setup, scheduler, page cache) once.
	sample(false)
	sample(true)
	// One fleet run is a few milliseconds, so each side needs many
	// samples before its minimum converges on the true floor.
	minOn, minOff := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < 12; i++ {
		if d := sample(false); d < minOff {
			minOff = d
		}
		if d := sample(true); d < minOn {
			minOn = d
		}
	}
	overhead := 100 * (float64(minOn) - float64(minOff)) / float64(minOff)
	t.Logf("fleet e2e: durable %v, in-memory %v, overhead %.2f%%", minOn, minOff, overhead)
	if overhead > 10 {
		t.Errorf("durable store overhead %.2f%% exceeds the 10%% budget (durable %v, in-memory %v)",
			overhead, minOn, minOff)
	}
}
